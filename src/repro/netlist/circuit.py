"""Sequential circuits: primary inputs, flip-flops, combinational gates.

A :class:`Circuit` is a synchronous netlist.  Every signal is named;
each name is driven by exactly one of: a primary input, a flip-flop
output, a constant, or a gate output.  Combinational logic must be
acyclic (levelized at construction).

Circuits also carry a *module map* (signal name -> module name), which
the USB comparison experiment uses to report selections per design
block as in Table 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import Gate, GateKind
from repro.netlist.signals import ONE, ZERO


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop: ``output`` samples ``data`` at every clock edge."""

    output: str
    data: str
    init: int = 0

    def __post_init__(self) -> None:
        if self.init not in (ZERO, ONE):
            raise NetlistError(
                f"flip-flop {self.output!r} init must be 0 or 1, "
                f"got {self.init!r}"
            )


class Circuit:
    """A validated synchronous gate-level netlist.

    Use :class:`CircuitBuilder` to construct circuits incrementally; the
    constructor validates single-driver discipline, reference integrity,
    and combinational acyclicity, and precomputes a gate levelization
    plus fan-in/fan-out maps.
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        flops: Iterable[FlipFlop],
        gates: Iterable[Gate],
        constants: Optional[Mapping[str, int]] = None,
        modules: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.flops: Tuple[FlipFlop, ...] = tuple(flops)
        self.gates: Tuple[Gate, ...] = tuple(gates)
        self.constants: Dict[str, int] = dict(constants or {})
        self.modules: Dict[str, str] = dict(modules or {})
        self._validate()
        self._levelized: Tuple[Gate, ...] = self._levelize()
        self._fanin, self._fanout = self._connectivity()

    # ------------------------------------------------------------------
    @property
    def flop_names(self) -> Tuple[str, ...]:
        return tuple(f.output for f in self.flops)

    @property
    def signals(self) -> FrozenSet[str]:
        """Every named signal of the circuit."""
        names: Set[str] = set(self.inputs)
        names.update(self.constants)
        names.update(f.output for f in self.flops)
        names.update(g.output for g in self.gates)
        return frozenset(names)

    @property
    def num_flops(self) -> int:
        return len(self.flops)

    def flop(self, name: str) -> FlipFlop:
        for f in self.flops:
            if f.output == name:
                return f
        raise KeyError(f"circuit {self.name!r} has no flip-flop {name!r}")

    def module_of(self, signal: str) -> str:
        """Module owning *signal* (``"top"`` when unmapped)."""
        return self.modules.get(signal, "top")

    def levelized_gates(self) -> Tuple[Gate, ...]:
        """Gates in dependency order (inputs before consumers)."""
        return self._levelized

    def fanin(self, signal: str) -> FrozenSet[str]:
        """Immediate combinational fan-in of *signal*."""
        return self._fanin.get(signal, frozenset())

    def fanout(self, signal: str) -> FrozenSet[str]:
        """Immediate combinational fan-out of *signal*."""
        return self._fanout.get(signal, frozenset())

    def flop_dependency_graph(self) -> Dict[str, FrozenSet[str]]:
        """Sequential dependencies: FF -> the FFs/inputs in the
        transitive combinational fan-in of its data signal.

        This is the graph PRNet runs PageRank on.
        """
        sources = set(self.inputs) | set(self.flop_names) | set(self.constants)
        memo: Dict[str, FrozenSet[str]] = {}

        def cone(signal: str) -> FrozenSet[str]:
            if signal in sources:
                return frozenset([signal])
            cached = memo.get(signal)
            if cached is not None:
                return cached
            memo[signal] = frozenset()  # cycle guard (cannot happen: DAG)
            collected: Set[str] = set()
            for upstream in self._fanin.get(signal, frozenset()):
                collected |= cone(upstream)
            result = frozenset(collected)
            memo[signal] = result
            return result

        return {f.output: cone(f.data) for f in self.flops}

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        drivers: Dict[str, str] = {}
        for name in self.inputs:
            self._claim(drivers, name, "primary input")
        for name in self.constants:
            self._claim(drivers, name, "constant")
            if self.constants[name] not in (ZERO, ONE):
                raise NetlistError(f"constant {name!r} must be 0 or 1")
        for flop in self.flops:
            self._claim(drivers, flop.output, "flip-flop")
        for gate in self.gates:
            self._claim(drivers, gate.output, "gate")
        known = set(drivers)
        for gate in self.gates:
            for signal in gate.inputs:
                if signal not in known:
                    raise NetlistError(
                        f"gate {gate.output!r} reads undriven signal "
                        f"{signal!r}"
                    )
        for flop in self.flops:
            if flop.data not in known:
                raise NetlistError(
                    f"flip-flop {flop.output!r} samples undriven signal "
                    f"{flop.data!r}"
                )
        for signal in self.modules:
            if signal not in known:
                raise NetlistError(
                    f"module map references unknown signal {signal!r}"
                )

    @staticmethod
    def _claim(drivers: Dict[str, str], name: str, kind: str) -> None:
        if not name:
            raise NetlistError("signal names must be non-empty")
        if name in drivers:
            raise NetlistError(
                f"signal {name!r} driven twice ({drivers[name]} and {kind})"
            )
        drivers[name] = kind

    def _levelize(self) -> Tuple[Gate, ...]:
        """Topologically sort gates; raise on combinational cycles."""
        ready: Set[str] = set(self.inputs) | set(self.constants)
        ready.update(f.output for f in self.flops)
        pending = list(self.gates)
        ordered: List[Gate] = []
        while pending:
            progressed = False
            still: List[Gate] = []
            for gate in pending:
                if all(s in ready for s in gate.inputs):
                    ordered.append(gate)
                    ready.add(gate.output)
                    progressed = True
                else:
                    still.append(gate)
            if not progressed:
                cyclic = ", ".join(sorted(g.output for g in still)[:5])
                raise NetlistError(
                    f"combinational cycle in circuit {self.name!r} "
                    f"involving: {cyclic}"
                )
            pending = still
        return tuple(ordered)

    def _connectivity(
        self,
    ) -> Tuple[Dict[str, FrozenSet[str]], Dict[str, FrozenSet[str]]]:
        fanin: Dict[str, Set[str]] = {}
        fanout: Dict[str, Set[str]] = {}
        for gate in self.gates:
            fanin.setdefault(gate.output, set()).update(gate.inputs)
            for signal in gate.inputs:
                fanout.setdefault(signal, set()).add(gate.output)
        for flop in self.flops:
            fanout.setdefault(flop.data, set()).add(flop.output)
        return (
            {k: frozenset(v) for k, v in fanin.items()},
            {k: frozenset(v) for k, v in fanout.items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"flops={len(self.flops)}, gates={len(self.gates)})"
        )


class CircuitBuilder:
    """Incremental, module-aware construction of :class:`Circuit`.

    The builder tracks a *current module* label; every signal declared
    while a module is active is attributed to it, which the USB model
    uses to mirror the per-module layout of Table 4.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: List[str] = []
        self._flops: List[FlipFlop] = []
        self._gates: List[Gate] = []
        self._constants: Dict[str, int] = {}
        self._modules: Dict[str, str] = {}
        self._current_module: Optional[str] = None

    # -- module scoping -------------------------------------------------
    def module(self, name: str) -> "CircuitBuilder":
        """Set the module label for subsequently declared signals."""
        self._current_module = name
        return self

    def _attribute(self, signal: str) -> None:
        if self._current_module is not None:
            self._modules[signal] = self._current_module

    # -- declarations ----------------------------------------------------
    def input(self, name: str) -> str:
        self._inputs.append(name)
        self._attribute(name)
        return name

    def inputs(self, *names: str) -> List[str]:
        return [self.input(n) for n in names]

    def constant(self, name: str, value: int) -> str:
        self._constants[name] = value
        self._attribute(name)
        return name

    def flop(self, name: str, data: str, init: int = 0) -> str:
        self._flops.append(FlipFlop(output=name, data=data, init=init))
        self._attribute(name)
        return name

    def gate(self, kind: GateKind, output: str, *inputs: str) -> str:
        self._gates.append(Gate(kind=kind, inputs=tuple(inputs), output=output))
        self._attribute(output)
        return output

    # convenience wrappers
    def and_(self, output: str, *inputs: str) -> str:
        return self.gate(GateKind.AND, output, *inputs)

    def or_(self, output: str, *inputs: str) -> str:
        return self.gate(GateKind.OR, output, *inputs)

    def not_(self, output: str, value: str) -> str:
        return self.gate(GateKind.NOT, output, value)

    def xor_(self, output: str, *inputs: str) -> str:
        return self.gate(GateKind.XOR, output, *inputs)

    def buf(self, output: str, value: str) -> str:
        return self.gate(GateKind.BUF, output, value)

    def mux(self, output: str, select: str, if_zero: str, if_one: str) -> str:
        return self.gate(GateKind.MUX, output, select, if_zero, if_one)

    def build(self) -> Circuit:
        """Validate and freeze the netlist."""
        return Circuit(
            name=self.name,
            inputs=self._inputs,
            flops=self._flops,
            gates=self._gates,
            constants=self._constants,
            modules=self._modules,
        )
