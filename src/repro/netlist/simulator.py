"""Cycle-accurate simulation of gate-level circuits.

The same engine runs in two modes:

* **binary** -- all signals known; used to produce golden traces,
* **ternary** -- signals may be X; used by the restoration engine to
  replay a trace with only the traced flip-flops known.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.signals import UNKNOWN, Value, is_known


class Simulator:
    """Simulates a :class:`Circuit` cycle by cycle.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit

    # ------------------------------------------------------------------
    def evaluate_combinational(
        self, state: Mapping[str, Value], inputs: Mapping[str, Value]
    ) -> Dict[str, Value]:
        """One combinational settle: values for every signal.

        *state* maps flip-flop outputs to their current values; *inputs*
        maps primary inputs.  Missing entries default to X.
        """
        values: Dict[str, Value] = {}
        for name in self.circuit.inputs:
            values[name] = inputs.get(name, UNKNOWN)
        for name, constant in self.circuit.constants.items():
            values[name] = constant
        for flop in self.circuit.flops:
            values[flop.output] = state.get(flop.output, UNKNOWN)
        for gate in self.circuit.levelized_gates():
            values[gate.output] = gate.evaluate(
                [values[s] for s in gate.inputs]
            )
        return values

    def step(
        self, state: Mapping[str, Value], inputs: Mapping[str, Value]
    ) -> Dict[str, Value]:
        """Next flip-flop state after one clock edge."""
        values = self.evaluate_combinational(state, inputs)
        return {f.output: values[f.data] for f in self.circuit.flops}

    def initial_state(self) -> Dict[str, Value]:
        """Reset state: every flip-flop at its declared init value."""
        return {f.output: f.init for f in self.circuit.flops}

    # ------------------------------------------------------------------
    def run(
        self,
        input_sequence: Sequence[Mapping[str, Value]],
        initial_state: Optional[Mapping[str, Value]] = None,
    ) -> List[Dict[str, Value]]:
        """Simulate one value map per cycle (all signals).

        Returns a list of length ``len(input_sequence)``; entry *t*
        holds every signal's value during cycle *t* (flip-flops show
        their *current* state, i.e. the value latched at the previous
        edge).
        """
        state = dict(initial_state or self.initial_state())
        waves: List[Dict[str, Value]] = []
        for cycle, stimulus in enumerate(input_sequence):
            values = self.evaluate_combinational(state, stimulus)
            waves.append(values)
            state = {f.output: values[f.data] for f in self.circuit.flops}
        return waves

    def run_random(
        self, cycles: int, seed: int = 0
    ) -> List[Dict[str, Value]]:
        """Binary simulation under uniformly random primary inputs."""
        if cycles <= 0:
            raise SimulationError(f"cycles must be positive, got {cycles}")
        rng = random.Random(seed)
        stimulus = [
            {name: rng.randint(0, 1) for name in self.circuit.inputs}
            for _ in range(cycles)
        ]
        waves = self.run(stimulus)
        for t, values in enumerate(waves):
            for name, value in values.items():
                if not is_known(value):  # pragma: no cover - binary mode
                    raise SimulationError(
                        f"X value on {name!r} at cycle {t} in binary "
                        "simulation"
                    )
        return waves
