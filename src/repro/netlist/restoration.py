"""State restoration and the State Restoration Ratio (SRR).

Given a golden execution and the values of a small set of *traced*
flip-flops, restoration recovers the values of untraced flip-flops by
propagating knowns **forward** (ternary gate evaluation, FF data at
cycle *t* fixes FF output at *t+1*) and **backward** (gate
justification, FF output at *t+1* fixes FF data at *t*) until a
fixpoint across all timeframes.

``SRR = restored state values / traced state values`` -- the metric the
SRR family of selection algorithms (SigSeT et al.) maximizes.  The
paper's point is that a high SRR does **not** imply the traced signals
matter for application-level debug; this engine exists so the
comparison of Section 5.4 can be reproduced end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.signals import UNKNOWN, Value, is_known
from repro.netlist.simulator import Simulator


@dataclass(frozen=True)
class RestorationReport:
    """Outcome of one restoration run.

    Attributes
    ----------
    restored_values:
        Known flip-flop values per cycle (including the traced ones).
    traced_count:
        Total traced values over all cycles (the SRR denominator).
    restored_count:
        Total known flip-flop values over all cycles (the numerator).
    """

    restored_values: Tuple[Dict[str, Value], ...]
    traced_count: int
    restored_count: int

    @property
    def srr(self) -> float:
        """State Restoration Ratio (>= 1.0 whenever anything is traced)."""
        if self.traced_count == 0:
            return 0.0
        return self.restored_count / self.traced_count

    def restoration_fraction(self, circuit: Circuit) -> float:
        """Fraction of *all* flip-flop values that became known."""
        total = circuit.num_flops * len(self.restored_values)
        if total == 0:
            return 0.0
        return self.restored_count / total


class RestorationEngine:
    """Forward/backward X-propagation restoration over timeframes."""

    def __init__(self, circuit: Circuit, check_golden: bool = False) -> None:
        self.circuit = circuit
        self.simulator = Simulator(circuit)
        self.check_golden = check_golden

    def restore(
        self,
        golden: Sequence[Mapping[str, Value]],
        traced: Iterable[str],
        inputs_known: bool = False,
    ) -> RestorationReport:
        """Restore flip-flop values from a golden run and traced FFs.

        Parameters
        ----------
        golden:
            Per-cycle full value maps from a binary simulation (the
            silicon's actual behaviour; only traced slices of it are
            observable).
        traced:
            Names of traced flip-flops (their value is known every
            cycle).
        inputs_known:
            Whether primary input values are also observable (off-chip
            stimulus replay).  The paper's setting is ``False``.
        """
        traced_set = set(traced)
        unknown_flops = set(self.circuit.flop_names) - traced_set
        if traced_set - set(self.circuit.flop_names):
            missing = traced_set - set(self.circuit.flop_names)
            raise SimulationError(
                f"traced signals are not flip-flops: {sorted(missing)}"
            )
        cycles = len(golden)
        values: List[Dict[str, Value]] = []
        for t in range(cycles):
            frame: Dict[str, Value] = {}
            for name in self.circuit.inputs:
                frame[name] = golden[t][name] if inputs_known else UNKNOWN
            for name, constant in self.circuit.constants.items():
                frame[name] = constant
            for name in self.circuit.flop_names:
                frame[name] = golden[t][name] if name in traced_set else UNKNOWN
            for gate in self.circuit.gates:
                frame.setdefault(gate.output, UNKNOWN)
            values.append(frame)

        self._fixpoint(values)

        if self.check_golden:
            self._check(values, golden)

        restored = tuple(
            {name: values[t][name] for name in self.circuit.flop_names}
            for t in range(cycles)
        )
        restored_count = sum(
            1
            for frame in restored
            for v in frame.values()
            if is_known(v)
        )
        return RestorationReport(
            restored_values=restored,
            traced_count=len(traced_set) * cycles,
            restored_count=restored_count,
        )

    # ------------------------------------------------------------------
    def _fixpoint(self, values: List[Dict[str, Value]]) -> None:
        gates = self.circuit.levelized_gates()
        flops = self.circuit.flops
        cycles = len(values)
        changed = True
        while changed:
            changed = False
            # forward sweep: combinational evaluation + FF time-shift
            for t in range(cycles):
                frame = values[t]
                for gate in gates:
                    current = frame[gate.output]
                    if is_known(current):
                        continue
                    result = gate.evaluate([frame[s] for s in gate.inputs])
                    if is_known(result):
                        frame[gate.output] = result
                        changed = True
                if t + 1 < cycles:
                    nxt = values[t + 1]
                    for flop in flops:
                        if is_known(frame[flop.data]) and not is_known(
                            nxt[flop.output]
                        ):
                            nxt[flop.output] = frame[flop.data]
                            changed = True
            # backward sweep: justification + FF time-shift
            for t in range(cycles - 1, -1, -1):
                frame = values[t]
                if t + 1 < cycles:
                    nxt = values[t + 1]
                    for flop in flops:
                        if is_known(nxt[flop.output]) and not is_known(
                            frame[flop.data]
                        ):
                            frame[flop.data] = nxt[flop.output]
                            changed = True
                for gate in reversed(gates):
                    output_value = frame[gate.output]
                    if not is_known(output_value):
                        continue
                    inputs = [frame[s] for s in gate.inputs]
                    refined = gate.justify(output_value, inputs)
                    for signal, old, new in zip(gate.inputs, inputs, refined):
                        if not is_known(old) and is_known(new):
                            frame[signal] = new
                            changed = True

    def _check(
        self,
        values: Sequence[Mapping[str, Value]],
        golden: Sequence[Mapping[str, Value]],
    ) -> None:
        """Every restored value must agree with the golden run."""
        for t, frame in enumerate(values):
            for name, value in frame.items():
                if is_known(value) and name in golden[t]:
                    if golden[t][name] != value:
                        raise SimulationError(
                            f"restoration inferred {name}={value} at cycle "
                            f"{t}, golden value is {golden[t][name]}"
                        )


def state_restoration_ratio(
    circuit: Circuit,
    traced: Iterable[str],
    cycles: int = 64,
    seed: int = 0,
    inputs_known: bool = False,
) -> float:
    """SRR of tracing *traced* on *circuit* under random stimulus."""
    simulator = Simulator(circuit)
    golden = simulator.run_random(cycles, seed=seed)
    engine = RestorationEngine(circuit)
    report = engine.restore(golden, traced, inputs_known=inputs_known)
    return report.srr
