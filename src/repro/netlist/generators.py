"""Synthetic netlist building blocks.

These composable generators add standard sequential structures to a
:class:`~repro.netlist.circuit.CircuitBuilder`: binary counters, shift
registers, one-hot FSM rings, and LFSRs.  They serve two purposes:

* unit- and property-test fixtures for the simulator and the
  restoration engine (a shift register restores perfectly from its
  head; a counter's low bits restore its high bits poorly, ...);
* the internal "bookkeeping" logic of the synthetic USB controller --
  exactly the kind of high-restorability flip-flops that SRR-based
  selection favors over interface registers (Section 5.4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netlist.circuit import CircuitBuilder


def add_counter(
    builder: CircuitBuilder, prefix: str, width: int, enable: str
) -> List[str]:
    """A *width*-bit binary up-counter gated by *enable*.

    ``bit[i] <= bit[i] XOR carry[i]`` with ``carry[0] = enable`` and
    ``carry[i+1] = carry[i] AND bit[i]``.  Returns the counter FF names.
    """
    if width < 1:
        raise ValueError(f"counter width must be >= 1, got {width}")
    bits: List[str] = []
    carry = enable
    for i in range(width):
        bit = f"{prefix}_q{i}"
        nxt = builder.xor_(f"{prefix}_n{i}", bit_placeholder(builder, bit), carry)
        builder.flop(bit, nxt)
        if i + 1 < width:
            carry = builder.and_(f"{prefix}_c{i + 1}", carry, bit)
        bits.append(bit)
    return bits


def bit_placeholder(builder: CircuitBuilder, name: str) -> str:
    """Forward reference to a flip-flop declared later in the builder.

    Flip-flop outputs are state elements, so gates may read them before
    the ``flop`` declaration appears; the builder validates the final
    netlist, not declaration order.  This helper exists purely to make
    that intent explicit at call sites.
    """
    return name


def add_shift_register(
    builder: CircuitBuilder, prefix: str, width: int, data_in: str
) -> List[str]:
    """A serial-in shift register; returns FF names head-first."""
    if width < 1:
        raise ValueError(f"shift register width must be >= 1, got {width}")
    stages: List[str] = []
    previous = data_in
    for i in range(width):
        stage = f"{prefix}_s{i}"
        builder.flop(stage, previous)
        stages.append(stage)
        previous = stage
    return stages


def add_one_hot_ring(
    builder: CircuitBuilder, prefix: str, states: int, advance: str
) -> List[str]:
    """A one-hot FSM ring that rotates when *advance* is high.

    ``state[i] <= advance ? state[i-1] : state[i]``; state 0 starts hot.
    Returns the state FF names.
    """
    if states < 2:
        raise ValueError(f"one-hot ring needs >= 2 states, got {states}")
    names = [f"{prefix}_h{i}" for i in range(states)]
    for i, name in enumerate(names):
        previous = names[(i - 1) % states]
        nxt = builder.mux(f"{prefix}_hn{i}", advance, name, previous)
        builder.flop(name, nxt, init=1 if i == 0 else 0)
    return names


def add_lfsr(
    builder: CircuitBuilder,
    prefix: str,
    width: int,
    taps: Optional[Sequence[int]] = None,
) -> List[str]:
    """A Fibonacci LFSR; returns FF names (stage 0 receives feedback)."""
    if width < 2:
        raise ValueError(f"LFSR width must be >= 2, got {width}")
    if taps is None:
        taps = (width - 1, width - 2)
    if any(t < 0 or t >= width for t in taps) or len(set(taps)) < 2:
        raise ValueError(f"invalid LFSR taps {taps!r} for width {width}")
    names = [f"{prefix}_r{i}" for i in range(width)]
    feedback = builder.xor_(
        f"{prefix}_fb", *[names[t] for t in taps]
    )
    builder.flop(names[0], feedback, init=1)
    for i in range(1, width):
        builder.flop(names[i], names[i - 1])
    return names


def generate_soc_like(blocks: int, seed: int = 0) -> "Circuit":
    """A large synthetic SoC-like netlist for scalability studies.

    Each block is a small IP: a control FSM ring, a data shift
    register, a transaction counter, and an LFSR scrambler, with
    handshake coupling to the previous block.  ``blocks=50`` yields a
    ~1500-flip-flop design -- the scale where gate-level selection
    methods start to labour while flow-level selection does not look at
    the netlist at all (Section 5.4: SRR methods could not load the
    T2).
    """
    import random as _random

    from repro.netlist.circuit import Circuit

    if blocks < 1:
        raise ValueError(f"blocks must be >= 1, got {blocks}")
    rng = _random.Random(seed)
    b = CircuitBuilder(f"soc_like_{blocks}")
    stimulus = b.input("stimulus")
    valid = b.input("valid")
    previous_done = valid
    for i in range(blocks):
        b.module(f"ip{i}")
        ring = add_one_hot_ring(
            b, f"ip{i}_fsm", rng.randint(4, 8), previous_done
        )
        chain = add_shift_register(
            b, f"ip{i}_data", rng.randint(8, 16), stimulus
        )
        count = add_counter(
            b, f"ip{i}_cnt", rng.randint(3, 6), previous_done
        )
        add_lfsr(b, f"ip{i}_scr", rng.randint(4, 8))
        # handshake into the next block: done when the FSM wraps and
        # the counter's low bit agrees with the data head
        done = b.and_(f"ip{i}_done", ring[-1], count[0], chain[0])
        previous_done = done
    return b.build()


def add_register(
    builder: CircuitBuilder,
    prefix: str,
    width: int,
    data: Sequence[str],
    enable: str,
) -> List[str]:
    """A *width*-bit enabled register sampling *data* bit signals.

    ``q[i] <= enable ? data[i] : q[i]``.  Returns the FF names.
    """
    if len(data) != width:
        raise ValueError(
            f"register {prefix!r}: {width} bits but {len(data)} data signals"
        )
    names: List[str] = []
    for i in range(width):
        name = f"{prefix}{i}" if width > 1 else prefix
        nxt = builder.mux(f"{name}_n", enable, name, data[i])
        builder.flop(name, nxt)
        names.append(name)
    return names
