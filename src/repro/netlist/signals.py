"""Three-valued (0 / 1 / X) logic for simulation and state restoration.

Values are plain ints ``0`` and ``1`` plus the sentinel :data:`UNKNOWN`
(rendered ``"x"``).  X-propagation follows standard ternary semantics:
a controlling value decides the output even when other inputs are
unknown (``AND(0, x) = 0``, ``OR(1, x) = 1``), which is exactly what
state-restoration engines exploit to recover untraced flip-flops.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

ZERO = 0
ONE = 1
#: The unknown value "X" of ternary simulation.
UNKNOWN = "x"

Value = Union[int, str]

VALID_VALUES = (ZERO, ONE, UNKNOWN)


def validate_value(value: Value) -> Value:
    """Return *value* if it is a legal ternary value, else raise."""
    if value not in VALID_VALUES:
        raise ValueError(f"not a ternary logic value: {value!r}")
    return value


def is_known(value: Value) -> bool:
    """Whether *value* is a definite 0 or 1."""
    return value == ZERO or value == ONE


def not3(value: Value) -> Value:
    """Ternary NOT."""
    if value == ZERO:
        return ONE
    if value == ONE:
        return ZERO
    return UNKNOWN


def and3(values: Iterable[Value]) -> Value:
    """Ternary AND: any 0 dominates, else X poisons, else 1."""
    saw_unknown = False
    for v in values:
        if v == ZERO:
            return ZERO
        if v == UNKNOWN:
            saw_unknown = True
    return UNKNOWN if saw_unknown else ONE


def or3(values: Iterable[Value]) -> Value:
    """Ternary OR: any 1 dominates, else X poisons, else 0."""
    saw_unknown = False
    for v in values:
        if v == ONE:
            return ONE
        if v == UNKNOWN:
            saw_unknown = True
    return UNKNOWN if saw_unknown else ZERO


def xor3(values: Iterable[Value]) -> Value:
    """Ternary XOR: any X poisons; otherwise parity."""
    parity = 0
    for v in values:
        if v == UNKNOWN:
            return UNKNOWN
        parity ^= v  # type: ignore[operator]
    return parity


def mux3(select: Value, if_zero: Value, if_one: Value) -> Value:
    """Ternary 2:1 MUX.

    An unknown select still yields a known output when both data inputs
    agree (standard optimistic X semantics).
    """
    if select == ZERO:
        return if_zero
    if select == ONE:
        return if_one
    if if_zero == if_one and is_known(if_zero):
        return if_zero
    return UNKNOWN


def to_bits(value: int, width: int) -> Sequence[int]:
    """Little-endian bit decomposition of *value* into *width* bits."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: Sequence[Value]) -> Union[int, str]:
    """Recompose little-endian *bits*; ``UNKNOWN`` if any bit is X."""
    total = 0
    for i, bit in enumerate(bits):
        if not is_known(bit):
            return UNKNOWN
        total |= int(bit) << i
    return total
