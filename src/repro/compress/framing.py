"""Bit-level primitives and the self-resynchronizing frame format.

The codec writes a *framed bitstream*: a sequence of byte-aligned
frames, each carrying a bit-packed payload behind a sync marker, a
small header, and a CRC-16.  Frames are the unit of loss -- a
corrupted byte invalidates exactly the frame it lands in, because the
reader re-synchronizes by scanning for the next sync marker and every
data frame is independently decodable (its first timestamp is
absolute, not a delta).  This mirrors how on-chip trace compressors
bound error propagation, and it is also the eviction granularity of
the compressed trace buffer: overflow drops whole frames.

Frame layout (all multi-byte fields big-endian)::

    +------+------+------+---------+---------+-----------+-------+
    | 0xA5 | 0xC3 | type | seq(16) | len(16) | payload.. | crc16 |
    +------+------+------+---------+---------+-----------+-------+

``crc16`` (CCITT, init 0xFFFF) covers type, seq, len, and payload.
Payloads are produced by :class:`BitWriter` (MSB-first bit packing)
and consumed by :class:`BitReader`; integers of known width are written
raw, unbounded ones as *nibble varints* (groups of 3 bits, LSB-first,
with a 1-bit continuation flag -- a delta of 0..7 costs 4 bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import CompressionError
from repro.runtime.checksum import crc16

#: Two-byte frame sync marker (chosen for a mixed bit pattern that is
#: unlikely to appear repeatedly in packed payload data).
SYNC = b"\xa5\xc3"

#: Frame types.
FRAME_HEADER = 0  #: stream header: dictionary, scenario label, seed
FRAME_DATA = 1  #: a batch of encoded records

#: Fixed per-frame overhead in bytes: sync(2) + type(1) + seq(2) +
#: len(2) + crc(2).
FRAME_OVERHEAD_BYTES = 9

#: Maximum payload size (the length field is 16 bits).
MAX_PAYLOAD_BYTES = 0xFFFF


class BitWriter:
    """Packs integers MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0  # bits accumulated, MSB-first
        self._nacc = 0

    @property
    def bit_length(self) -> int:
        """Bits written so far (before padding)."""
        return len(self._bytes) * 8 + self._nacc

    def write(self, value: int, nbits: int) -> None:
        """Append the *nbits* low bits of *value* (MSB first)."""
        if nbits < 0:
            raise CompressionError(f"negative bit count {nbits}")
        if value < 0 or (nbits < value.bit_length()):
            raise CompressionError(
                f"value {value} does not fit in {nbits} bits"
            )
        self._acc = (self._acc << nbits) | value
        self._nacc += nbits
        while self._nacc >= 8:
            self._nacc -= 8
            self._bytes.append((self._acc >> self._nacc) & 0xFF)
        self._acc &= (1 << self._nacc) - 1

    def write_varint(self, value: int) -> None:
        """Nibble varint: 3 payload bits per group, LSB-first, with a
        continuation bit ahead of each group."""
        if value < 0:
            raise CompressionError(f"varint value must be >= 0: {value}")
        while True:
            group = value & 0x7
            value >>= 3
            self.write(1 if value else 0, 1)
            self.write(group, 3)
            if not value:
                return

    def write_zigzag(self, value: int) -> None:
        """Signed varint via zigzag mapping (0, -1, 1, -2, ...)."""
        self.write_varint(value << 1 if value >= 0 else ((-value) << 1) - 1)

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write(byte, 8)

    def getvalue(self) -> bytes:
        """The packed bytes, zero-padded to a whole byte."""
        out = bytearray(self._bytes)
        if self._nacc:
            out.append((self._acc << (8 - self._nacc)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads integers MSB-first from a byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read(self, nbits: int) -> int:
        if nbits < 0:
            raise CompressionError(f"negative bit count {nbits}")
        if nbits > self.bits_remaining:
            raise CompressionError(
                f"bitstream exhausted: wanted {nbits} bits, "
                f"{self.bits_remaining} left"
            )
        value = 0
        pos = self._pos
        for _ in range(nbits):
            byte = self._data[pos >> 3]
            value = (value << 1) | ((byte >> (7 - (pos & 7))) & 1)
            pos += 1
        self._pos = pos
        return value

    def read_varint(self) -> int:
        value = 0
        shift = 0
        while True:
            more = self.read(1)
            value |= self.read(3) << shift
            shift += 3
            if not more:
                return value
            if shift > 96:  # corrupt stream guard
                raise CompressionError("runaway varint")

    def read_zigzag(self) -> int:
        raw = self.read_varint()
        return (raw >> 1) if not (raw & 1) else -((raw + 1) >> 1)

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read(8) for _ in range(count))


def varint_bits(value: int) -> int:
    """Encoded size of ``write_varint(value)`` in bits (cost model)."""
    if value < 0:
        raise CompressionError(f"varint value must be >= 0: {value}")
    groups = 1
    value >>= 3
    while value:
        groups += 1
        value >>= 3
    return groups * 4


# crc16 is re-exported from repro.runtime.checksum (CCITT-FALSE); the
# frame format below and the wire protocol share one implementation.

@dataclass(frozen=True)
class Frame:
    """One decoded frame: its type, sequence number, and payload."""

    frame_type: int
    seq: int
    payload: bytes

    @property
    def size_bytes(self) -> int:
        """On-wire size including sync, header, and CRC."""
        return FRAME_OVERHEAD_BYTES + len(self.payload)

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8


def write_frame(frame_type: int, seq: int, payload: bytes) -> bytes:
    """Serialize one frame (sync + header + payload + CRC)."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise CompressionError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit"
        )
    header = bytes(
        (frame_type, (seq >> 8) & 0xFF, seq & 0xFF,
         (len(payload) >> 8) & 0xFF, len(payload) & 0xFF)
    )
    body = header + payload
    crc = crc16(body)
    return SYNC + body + bytes(((crc >> 8) & 0xFF, crc & 0xFF))


def _try_parse(data: bytes, start: int) -> Tuple[Frame, int]:
    """Parse the frame whose sync marker starts at *start*.

    Returns ``(frame, end_offset)``.  Raises :class:`CompressionError`
    on CRC mismatch and :class:`IndexError`-free truncation detection
    via a ``CompressionError`` with ``"incomplete"`` in the message.
    """
    if len(data) - start < FRAME_OVERHEAD_BYTES:
        raise CompressionError("incomplete frame header")
    base = start + len(SYNC)
    frame_type = data[base]
    seq = (data[base + 1] << 8) | data[base + 2]
    length = (data[base + 3] << 8) | data[base + 4]
    end = start + FRAME_OVERHEAD_BYTES + length
    if len(data) < end:
        raise CompressionError("incomplete frame payload")
    body = data[base:base + 5 + length]
    stored = (data[end - 2] << 8) | data[end - 1]
    if crc16(body) != stored:
        raise CompressionError(
            f"frame CRC mismatch at byte {start} "
            f"(stored {stored:#06x}, computed {crc16(body):#06x})"
        )
    return Frame(frame_type, seq, bytes(body[5:])), end


def scan_frames(
    data: bytes, eof: bool = True
) -> Tuple[List[Frame], int, List[str]]:
    """Extract complete frames from *data*, resynchronizing past junk.

    Returns ``(frames, consumed, diagnostics)`` where *consumed* is the
    number of leading bytes fully processed (an incremental caller keeps
    ``data[consumed:]`` for the next chunk).  With ``eof=False`` a
    trailing partial frame is left unconsumed; with ``eof=True`` it is
    reported as a diagnostic and consumed.

    Corruption handling: a sync-marker hit whose frame fails its CRC
    (or is truncated mid-stream) is skipped one byte at a time until
    the next plausible sync -- decode is self-resynchronizing.
    """
    frames: List[Frame] = []
    diagnostics: List[str] = []
    pos = 0
    skipped_from = None
    while True:
        sync_at = data.find(SYNC, pos)
        if sync_at < 0:
            # no sync ahead: everything up to the last possible marker
            # prefix is junk
            tail = max(len(data) - (len(SYNC) - 1), pos)
            if eof:
                tail = len(data)
            if tail > pos and skipped_from is None:
                skipped_from = pos
            pos = tail
            break
        if sync_at > pos and skipped_from is None:
            skipped_from = pos
        try:
            frame, end = _try_parse(data, sync_at)
        except CompressionError as exc:
            if "incomplete" in str(exc) and not eof:
                # wait for more bytes; report junk before the marker
                if skipped_from is not None:
                    diagnostics.append(
                        f"skipped {sync_at - skipped_from} byte(s) "
                        f"before offset {sync_at}"
                    )
                    skipped_from = None
                pos = sync_at
                break
            # corrupt or truncated-at-eof: treat the marker as junk and
            # resume the scan one byte later
            if skipped_from is None:
                skipped_from = sync_at
            if "incomplete" in str(exc) and eof:
                diagnostics.append(
                    f"dropped incomplete frame at byte {sync_at}"
                )
                skipped_from = None
                pos = len(data)
                break
            diagnostics.append(str(exc))
            pos = sync_at + 1
            continue
        if skipped_from is not None:
            diagnostics.append(
                f"skipped {sync_at - skipped_from} byte(s) before "
                f"offset {sync_at}"
            )
            skipped_from = None
        frames.append(frame)
        pos = end
    if skipped_from is not None and pos > skipped_from:
        diagnostics.append(
            f"skipped {pos - skipped_from} trailing byte(s)"
        )
    return frames, pos, diagnostics


def read_frames(data: bytes) -> Iterator[Frame]:
    """All complete, CRC-valid frames of *data* (junk skipped)."""
    frames, _, _ = scan_frames(data, eof=True)
    return iter(frames)
