"""Trace-buffer compression: codec, framing, and the selection-facing
cost model.

The paper treats the trace-buffer width as a hard wall: a message
combination is admissible iff the sum of its widths fits one entry
(Step 1).  Real post-silicon trace infrastructures stretch that budget
with on-chip compression; this subsystem models one and feeds it back
into selection:

* :mod:`repro.compress.framing` -- bit-level primitives: ``BitWriter``
  / ``BitReader``, nibble varints, and the self-resynchronizing frame
  format (sync marker, frame header, CRC-16).
* :mod:`repro.compress.encoder` -- lossless encoding of captured
  message streams: dictionary message-ID symbols sized by the traced
  set, varint delta timestamps, run-length suppression of repeated
  records, sub-group slice packing.
* :mod:`repro.compress.decoder` -- batch and incremental decode;
  corrupted frames are skipped (the reader re-synchronizes on the next
  sync marker) and surfaced as diagnostics.
* :mod:`repro.compress.cost` -- per-message expected encoded bits
  estimated from a clean-run corpus (:mod:`repro.mining.corpus`); the
  ``EffectiveWidthBudget`` replaces the worst-case
  ``sum(widths) <= W`` admissibility check of Step 1 with a
  ``width x depth`` bit budget under the cost model, guarded by a
  configurable worst-case margin.

``decode(encode(trace)) == trace`` is the codec contract,
property-tested in ``tests/compress/``.
"""

from repro.compress.framing import (
    FRAME_DATA,
    FRAME_HEADER,
    BitReader,
    BitWriter,
    Frame,
    crc16,
    read_frames,
    scan_frames,
    write_frame,
)
from repro.compress.encoder import (
    EncodedTrace,
    SymbolTable,
    TraceEncoder,
    encode_records,
    uncompressed_capture_bits,
)
from repro.compress.decoder import (
    DecodeDiagnostic,
    DecodeResult,
    IncrementalFrameDecoder,
    decode_stream,
)
from repro.compress.cost import (
    CompressionCostModel,
    CostEstimate,
    EffectiveWidthBudget,
    WidthBudget,
    cost_model_for_scenario,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "Frame",
    "FRAME_DATA",
    "FRAME_HEADER",
    "crc16",
    "read_frames",
    "scan_frames",
    "write_frame",
    "EncodedTrace",
    "SymbolTable",
    "TraceEncoder",
    "encode_records",
    "uncompressed_capture_bits",
    "DecodeDiagnostic",
    "DecodeResult",
    "IncrementalFrameDecoder",
    "decode_stream",
    "CompressionCostModel",
    "CostEstimate",
    "EffectiveWidthBudget",
    "WidthBudget",
    "cost_model_for_scenario",
]
