"""Compression-aware cost model and trace-buffer bit budgets.

Step 1 of the paper admits a message combination iff the sum of its
bit widths fits the trace-buffer width -- a *worst-case* rule: it
assumes every buffer entry spends ``width(m)`` bits on every traced
message.  With the :mod:`repro.compress` codec between the monitors
and the buffer, the real spend per message is what its *encoded* form
costs, which a clean-run corpus (:class:`repro.mining.corpus.
TraceCorpus`) lets us estimate per message: how often it occurs, how
its inter-occurrence gaps varint-encode, how wide its captured value
is.

Two budget objects expose the two admissibility rules behind one
interface (``capacity_bits`` / ``message_cost_bits`` / ``admits``):

* :class:`WidthBudget` -- the paper's rule, ``W(M) <= width``.
* :class:`EffectiveWidthBudget` -- the compression-aware rule: the
  whole run's expected encoded bits must fit the physical
  ``width x depth`` bit budget of the buffer, with a configurable
  *guard band* blending the expectation toward the worst observed run
  (``guard_band=1.0`` trusts the corpus not at all and prices every
  message at its worst run).

Additivity is preserved deliberately: per-message costs use the
message's *own-gap* deltas (the cycle gap between consecutive
occurrences of the same message).  The true delta stored on the wire
is the gap to the *previous record of any message*, which is never
larger -- so own-gap costs upper-bound real costs, keep the Step-1
DFS pruning sound, and drop straight into the Step-2 knapsack as
weights.  Symbol widths are likewise fixed at the full candidate
pool's dictionary size rather than per-combination -- conservative,
and constant across the search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compress.encoder import DEFAULT_RECORDS_PER_FRAME
from repro.compress.framing import FRAME_OVERHEAD_BYTES, varint_bits
from repro.core.message import Message
from repro.errors import CompressionError
from repro.mining.corpus import TraceCorpus


@dataclass(frozen=True)
class _NameStats:
    """Aggregated occurrence statistics of one message name."""

    mean_count: float  #: occurrences per run, averaged over the corpus
    max_count: int  #: occurrences in the heaviest run
    mean_delta_bits: float  #: per-run varint bits of own-gap deltas, mean
    max_delta_bits: int  #: ... and in the heaviest run
    entry_count: int  #: distinct flow-instance indices observed


@dataclass(frozen=True)
class CostEstimate:
    """Expected and worst-run encoded bits of one message.

    Both totals are *per run* and include the message's share of
    symbol bits, frame overhead, and dictionary-entry bits, so they
    are directly additive across a combination.
    """

    name: str
    value_bits: int
    occurrences_mean: float
    occurrences_max: int
    expected_bits: float
    worst_bits: float
    worst_case_bits: int  #: the paper's static cost: ``width(m)``

    def effective_bits(self, guard_band: float) -> float:
        """Blend of expectation and worst run: ``(1-g)*E + g*max``."""
        return (1.0 - guard_band) * self.expected_bits + (
            guard_band * self.worst_bits
        )


class CompressionCostModel:
    """Per-message expected encoded bits from a clean-run corpus.

    Parameters
    ----------
    corpus:
        Clean (passing) runs of the usage scenario under analysis.
    records_per_frame:
        Data-frame granularity of the encoder the estimate targets;
        determines how frame overhead amortizes per record.
    """

    def __init__(
        self,
        corpus: TraceCorpus,
        records_per_frame: int = DEFAULT_RECORDS_PER_FRAME,
    ) -> None:
        if corpus.runs == 0:
            raise CompressionError(
                "cannot build a cost model from an empty corpus"
            )
        if records_per_frame < 1:
            raise CompressionError(
                f"records_per_frame must be >= 1, got {records_per_frame}"
            )
        self.corpus = corpus
        self.records_per_frame = records_per_frame
        #: Sync + frame header + CRC + record-count varint, spread over
        #: the records of a full frame.
        self.per_record_overhead_bits = (
            FRAME_OVERHEAD_BYTES * 8 + 8
        ) / records_per_frame

        counts: Dict[str, List[int]] = {}
        delta_bits: Dict[str, List[int]] = {}
        indices: Dict[str, set] = {}
        max_cycle = 0
        for run_no, entry in enumerate(corpus.entries):
            last_cycle: Dict[str, int] = {}
            for record in entry.records:
                name = record.message.message.name
                if name not in counts:
                    counts[name] = [0] * corpus.runs
                    delta_bits[name] = [0] * corpus.runs
                    indices[name] = set()
                counts[name][run_no] += 1
                gap = record.cycle - last_cycle.get(name, 0)
                # own-gap priced as a zigzag varint (>= the bits of the
                # smaller true inter-record delta)
                delta_bits[name][run_no] += varint_bits(abs(gap) * 2)
                last_cycle[name] = record.cycle
                indices[name].add(record.message.index)
                max_cycle = max(max_cycle, record.cycle)
        self._stats: Dict[str, _NameStats] = {
            name: _NameStats(
                mean_count=sum(counts[name]) / corpus.runs,
                max_count=max(counts[name]),
                mean_delta_bits=sum(delta_bits[name]) / corpus.runs,
                max_delta_bits=max(delta_bits[name]),
                entry_count=len(indices[name]),
            )
            for name in counts
        }
        self._max_cycle = max_cycle
        #: Dictionary size if every observed indexed message were
        #: traced -- the conservative, combination-independent symbol
        #: width used throughout selection.
        total_entries = sum(s.entry_count for s in self._stats.values())
        self.symbol_bits = max(1, total_entries.bit_length())
        self._estimates: Dict[Tuple[str, Optional[str], int, int], CostEstimate] = {}

    # ------------------------------------------------------------------
    @property
    def message_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._stats))

    def records_per_run(self) -> float:
        """Mean records per corpus run (all messages)."""
        return self.corpus.total_records / self.corpus.runs

    # ------------------------------------------------------------------
    def estimate(self, message: Message) -> CostEstimate:
        """Per-run encoded-bit estimate for tracing *message*.

        A sub-group slice inherits its parent's occurrence statistics
        (the slice is captured whenever the parent fires) but pays only
        its own slice width per value.  A message absent from the
        corpus is priced at zero expected bits but one worst-run
        record, so a non-zero guard band still charges for it.
        """
        key = (message.name, message.parent, message.width, message.beats)
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        if message.parent is not None:
            stats = self._stats.get(message.name) or self._stats.get(
                message.parent
            )
            value_bits = message.width
        else:
            stats = self._stats.get(message.name)
            value_bits = message.content_width
        # dictionary-entry bits in the header frame: index varint,
        # name length varint + UTF-8 name, value-width varint
        entry_bits = 16 + 8 * len(message.name) + 8
        per_record = (
            value_bits + self.symbol_bits + self.per_record_overhead_bits
        )
        if stats is None:
            worst_delta = varint_bits(2 * max(self._max_cycle, 1))
            estimate = CostEstimate(
                name=message.name,
                value_bits=value_bits,
                occurrences_mean=0.0,
                occurrences_max=1,
                expected_bits=float(entry_bits),
                worst_bits=entry_bits + per_record + worst_delta,
                worst_case_bits=message.width,
            )
        else:
            entry_total = stats.entry_count * entry_bits
            estimate = CostEstimate(
                name=message.name,
                value_bits=value_bits,
                occurrences_mean=stats.mean_count,
                occurrences_max=stats.max_count,
                expected_bits=(
                    entry_total
                    + stats.mean_delta_bits
                    + stats.mean_count * per_record
                ),
                worst_bits=(
                    entry_total
                    + stats.max_delta_bits
                    + stats.max_count * per_record
                ),
                worst_case_bits=message.width,
            )
        self._estimates[key] = estimate
        return estimate

    def expected_run_bits(
        self, messages: Iterable[Message], guard_band: float = 0.0
    ) -> float:
        """Total per-run encoded bits of tracing *messages*."""
        return sum(
            self.estimate(m).effective_bits(guard_band) for m in messages
        )


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------
class WidthBudget:
    """The paper's worst-case admissibility rule: ``W(M) <= width``.

    Exposes the same interface as :class:`EffectiveWidthBudget` so the
    selection layers can treat both uniformly.
    """

    mode = "width"

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise CompressionError(
                f"trace buffer width must be positive, got {width}"
            )
        self.width = width
        self.capacity_bits = width

    def message_cost_bits(self, message: Message) -> int:
        return message.width

    def admits(self, messages: Iterable[Message]) -> bool:
        return (
            sum(self.message_cost_bits(m) for m in messages)
            <= self.capacity_bits
        )

    def describe(self) -> str:
        return f"worst-case width budget: {self.width} bits/entry"


class EffectiveWidthBudget:
    """Compression-aware admissibility: expected encoded bits of the
    whole run fit the buffer's physical ``width x depth`` bit budget.

    Parameters
    ----------
    model:
        Cost model built from a clean-run corpus of the scenario.
    width, depth:
        Physical trace-buffer geometry; the budget is their product.
    guard_band:
        Worst-case margin in ``[0, 1]``: each message is priced at
        ``(1-g) * expected + g * worst-run`` bits.  ``0`` trusts the
        corpus mean; ``1`` admits only what the heaviest observed run
        would fit.
    """

    mode = "effective"

    def __init__(
        self,
        model: CompressionCostModel,
        width: int,
        depth: int,
        guard_band: float = 0.25,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise CompressionError(
                f"buffer geometry must be positive, got {width}x{depth}"
            )
        if not 0.0 <= guard_band <= 1.0:
            raise CompressionError(
                f"guard band must be in [0, 1], got {guard_band}"
            )
        self.model = model
        self.width = width
        self.depth = depth
        self.guard_band = guard_band
        #: Stream-header bits that do not scale with the traced set
        #: (frame overhead, version, scenario label, seed).
        self.fixed_overhead_bits = FRAME_OVERHEAD_BYTES * 8 + 16 * 8
        self.capacity_bits = max(
            0, width * depth - self.fixed_overhead_bits
        )

    def message_cost_bits(self, message: Message) -> int:
        """Integer (ceil) effective cost -- the knapsack weight."""
        cost = self.model.estimate(message).effective_bits(self.guard_band)
        return max(1, math.ceil(cost))

    def admits(self, messages: Iterable[Message]) -> bool:
        return (
            sum(self.message_cost_bits(m) for m in messages)
            <= self.capacity_bits
        )

    def utilization(self, messages: Iterable[Message]) -> float:
        """Fraction of the physical bit budget the estimate consumes."""
        used = self.fixed_overhead_bits + sum(
            self.message_cost_bits(m) for m in messages
        )
        return used / (self.width * self.depth)

    def describe(self) -> str:
        return (
            f"effective-width budget: {self.width}x{self.depth} = "
            f"{self.width * self.depth} bits, guard band "
            f"{self.guard_band:.0%}"
        )


# ----------------------------------------------------------------------
# scenario helper
# ----------------------------------------------------------------------
_MODEL_CACHE: Dict[Tuple[int, int, int, int, int], CompressionCostModel] = {}


def cost_model_for_scenario(
    number: int,
    instances: int = 1,
    runs: int = 20,
    base_seed: int = 0,
    jobs: int = 1,
    records_per_frame: int = DEFAULT_RECORDS_PER_FRAME,
) -> CompressionCostModel:
    """Cost model for T2 scenario *number* from a generated corpus.

    The corpus comes from :func:`repro.mining.corpus.generate_corpus`
    (content-addressed cache and all); the finished model is memoized
    in-process per parameter set.
    """
    key = (number, instances, runs, base_seed, records_per_frame)
    model = _MODEL_CACHE.get(key)
    if model is None:
        from repro.mining.corpus import generate_corpus

        corpus = generate_corpus(
            number,
            instances=instances,
            runs=runs,
            base_seed=base_seed,
            jobs=jobs,
        )
        model = CompressionCostModel(
            corpus, records_per_frame=records_per_frame
        )
        _MODEL_CACHE[key] = model
    return model
