"""Lossless encoding of captured message streams.

The encoder turns a sequence of :class:`~repro.sim.engine.TraceRecord`
objects into the framed bitstream of :mod:`repro.compress.framing`,
spending bits where the stream has structure:

* **Dictionary message-ID symbols.**  The distinct indexed messages of
  the stream form a dictionary sized by the traced set; each record
  names its message in ``ceil(log2(D + 1))`` bits instead of a fixed
  catalog-wide ID.  Symbol 0 is reserved as the run-length escape.
* **Varint delta timestamps.**  The first record of every data frame
  carries an absolute cycle (frames stay independently decodable for
  resynchronization); every later record stores the signed delta to
  its predecessor as a nibble varint, so idle gaps cost ``O(log gap)``
  bits instead of a full timestamp field.
* **Run-length suppression.**  A burst of identical records at a
  constant cycle stride (idle-loop polling, repeated credit returns)
  collapses into one record plus a ``RUN`` token carrying the repeat
  count and stride.
* **Sub-group slice packing.**  When the traced set observes a message
  only through a sub-group, the dictionary slot stores ``sub.width``
  value bits, not the parent's full content width -- the encoded form
  is exactly the slice the buffer would capture.

Value widths are per-dictionary-entry and grow to fit the widest value
actually observed, so ``decode(encode(trace)) == trace`` holds for any
input stream (the property tests in ``tests/compress`` enforce it);
compression quality, not correctness, is what the width hints buy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.compress.framing import (
    FRAME_DATA,
    FRAME_HEADER,
    BitWriter,
    write_frame,
)
from repro.core.message import Message
from repro.errors import CompressionError
from repro.sim.engine import TraceRecord

#: Stream format version carried in the header frame.
STREAM_VERSION = 1

#: Reserved symbol: run-length escape.
RUN_SYMBOL = 0

#: Records per data frame unless the caller overrides it.  Small
#: enough that a corrupted frame loses little, large enough that the
#: 9-byte frame overhead amortizes to ~2 bits per record.
DEFAULT_RECORDS_PER_FRAME = 32

#: Minimum repeats collapsed into a RUN token (below this the token
#: costs more than the records it replaces).
MIN_RUN = 2


@dataclass(frozen=True)
class SymbolEntry:
    """One dictionary slot: an indexed message and its value width."""

    index: int
    name: str
    value_bits: int


@dataclass(frozen=True)
class SymbolTable:
    """The message dictionary of one encoded stream.

    Symbols ``1..len(entries)`` map to entries in order; symbol
    :data:`RUN_SYMBOL` is the run-length escape.
    """

    entries: Tuple[SymbolEntry, ...]

    @property
    def symbol_bits(self) -> int:
        """Bits per symbol: enough for ``len(entries)`` IDs plus RUN."""
        return max(1, len(self.entries).bit_length())

    def symbol_of(self) -> Dict[Tuple[int, str], int]:
        """``(index, name) -> symbol`` lookup."""
        return {
            (e.index, e.name): sym
            for sym, e in enumerate(self.entries, start=1)
        }

    def entry(self, symbol: int) -> SymbolEntry:
        if not 1 <= symbol <= len(self.entries):
            raise CompressionError(f"unknown symbol {symbol}")
        return self.entries[symbol - 1]


@dataclass(frozen=True)
class FrameSpan:
    """Bookkeeping for one data frame of an encoded stream.

    ``start``/``stop`` index the original record sequence; the
    compressed trace buffer uses spans to evict whole frames.
    """

    seq: int
    start: int
    stop: int
    size_bits: int

    @property
    def record_count(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class EncodedTrace:
    """A complete framed bitstream plus its encoding statistics."""

    data: bytes
    table: SymbolTable
    record_count: int
    spans: Tuple[FrameSpan, ...]
    header_bits: int
    scenario: str = ""
    seed: int = 0

    @property
    def encoded_bits(self) -> int:
        """Total on-wire size in bits (frames, sync, CRCs included)."""
        return len(self.data) * 8

    @property
    def frame_count(self) -> int:
        """Data frames (the header frame is not counted)."""
        return len(self.spans)

    def ratio_vs(self, uncompressed_bits: int) -> float:
        """Compression ratio against an uncompressed representation."""
        if self.encoded_bits == 0:
            return float("inf") if uncompressed_bits else 1.0
        return uncompressed_bits / self.encoded_bits


def uncompressed_capture_bits(
    records: Iterable[TraceRecord], buffer_width: int = 32
) -> int:
    """Bits an *uncompressed* trace buffer spends on *records*.

    Each record occupies one ``buffer_width``-bit entry per beat
    (footnote 2 of the paper: wide messages are captured over multiple
    cycles) plus a 32-bit timestamp -- the baseline every compression
    ratio in this subsystem is measured against.
    """
    total = 0
    for record in records:
        content = record.message.message.content_width
        beats = max(1, -(-content // buffer_width))
        total += 32 + beats * buffer_width
    return total


def slice_widths_for(traced: Iterable[Message]) -> Dict[str, int]:
    """``parent name -> slice width`` for messages traced only through
    a sub-group (the sub-group slice packing input of the encoder)."""
    traced = tuple(traced)
    full = {m.name for m in traced if m.parent is None}
    widths: Dict[str, int] = {}
    for m in traced:
        if m.parent is not None and m.parent not in full:
            # mirror the trace buffer: the first sub-group (sorted
            # order) wins when several slice the same parent
            if m.parent not in widths:
                widths[m.parent] = m.width
    return widths


class TraceEncoder:
    """Encodes record streams under one configuration.

    Parameters
    ----------
    scenario, seed:
        Provenance recorded in the header frame (mirrors the text
        trace-file header).
    slice_widths:
        ``parent message name -> captured slice width`` for sub-group
        slice packing (see :func:`slice_widths_for`).
    records_per_frame:
        Data-frame granularity -- the unit of corruption loss and of
        compressed-buffer eviction.
    """

    def __init__(
        self,
        scenario: str = "",
        seed: int = 0,
        slice_widths: Optional[Mapping[str, int]] = None,
        records_per_frame: int = DEFAULT_RECORDS_PER_FRAME,
    ) -> None:
        if records_per_frame < 1:
            raise CompressionError(
                f"records_per_frame must be >= 1, got {records_per_frame}"
            )
        self.scenario = scenario
        self.seed = seed
        self.slice_widths = dict(slice_widths or {})
        self.records_per_frame = records_per_frame

    # ------------------------------------------------------------------
    def build_table(self, records: Sequence[TraceRecord]) -> SymbolTable:
        """Dictionary over the distinct indexed messages of *records*.

        The value width of each slot starts from the slice width (if
        the message is captured through a sub-group) or the message's
        full content width, then grows to fit the widest observed
        value -- the table can describe any input losslessly.
        """
        widest: Dict[Tuple[int, str], int] = {}
        for record in records:
            if record.value < 0:
                raise CompressionError(
                    f"cannot encode negative value {record.value} of "
                    f"{record.message.name}"
                )
            key = (record.message.index, record.message.message.name)
            hint = self.slice_widths.get(
                record.message.message.name,
                record.message.message.content_width,
            )
            needed = max(hint, record.value.bit_length(), 1)
            if needed > widest.get(key, 0):
                widest[key] = needed
        entries = tuple(
            SymbolEntry(index=index, name=name, value_bits=widest[(index, name)])
            for index, name in sorted(widest)
        )
        return SymbolTable(entries)

    def encode(self, records: Sequence[TraceRecord]) -> EncodedTrace:
        """Encode *records* into a framed bitstream."""
        records = tuple(records)
        table = self.build_table(records)
        symbol_of = table.symbol_of()
        sym_bits = table.symbol_bits

        chunks: List[bytes] = [self._header_frame(table)]
        header_bits = len(chunks[0]) * 8
        spans: List[FrameSpan] = []
        seq = 0
        for start in range(0, len(records), self.records_per_frame):
            stop = min(start + self.records_per_frame, len(records))
            seq += 1
            payload = self._frame_payload(
                records, start, stop, table, symbol_of, sym_bits
            )
            frame = write_frame(FRAME_DATA, seq & 0xFFFF, payload)
            chunks.append(frame)
            spans.append(
                FrameSpan(
                    seq=seq, start=start, stop=stop,
                    size_bits=len(frame) * 8,
                )
            )
        return EncodedTrace(
            data=b"".join(chunks),
            table=table,
            record_count=len(records),
            spans=tuple(spans),
            header_bits=header_bits,
            scenario=self.scenario,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def _header_frame(self, table: SymbolTable) -> bytes:
        writer = BitWriter()
        writer.write(STREAM_VERSION, 8)
        name = self.scenario.encode("utf-8")
        writer.write_varint(len(name))
        writer.write_bytes(name)
        writer.write_zigzag(self.seed)
        writer.write_varint(self.records_per_frame)
        writer.write_varint(len(table.entries))
        for entry in table.entries:
            writer.write_varint(entry.index)
            encoded = entry.name.encode("utf-8")
            writer.write_varint(len(encoded))
            writer.write_bytes(encoded)
            writer.write_varint(entry.value_bits)
        return write_frame(FRAME_HEADER, 0, writer.getvalue())

    def _frame_payload(
        self,
        records: Sequence[TraceRecord],
        start: int,
        stop: int,
        table: SymbolTable,
        symbol_of: Dict[Tuple[int, str], int],
        sym_bits: int,
    ) -> bytes:
        writer = BitWriter()
        writer.write_varint(stop - start)
        i = start
        prev_cycle = 0
        while i < stop:
            record = records[i]
            key = (record.message.index, record.message.message.name)
            symbol = symbol_of[key]
            entry = table.entry(symbol)
            writer.write(symbol, sym_bits)
            if i == start:
                writer.write_varint(record.cycle)
            else:
                writer.write_zigzag(record.cycle - prev_cycle)
            writer.write(record.value, entry.value_bits)
            prev_cycle = record.cycle
            # run-length pass: identical records at a constant stride
            run = 0
            if i + 1 < stop:
                stride = records[i + 1].cycle - record.cycle
                j = i + 1
                while (
                    j < stop
                    and records[j].message == record.message
                    and records[j].value == record.value
                    and records[j].cycle - records[j - 1].cycle == stride
                ):
                    run += 1
                    j += 1
            if run >= MIN_RUN:
                writer.write(RUN_SYMBOL, sym_bits)
                writer.write_varint(run)
                writer.write_zigzag(records[i + 1].cycle - record.cycle)
                prev_cycle = records[i + run].cycle
                i += run + 1
            else:
                i += 1
        return writer.getvalue()


def encode_records(
    records: Sequence[TraceRecord],
    scenario: str = "",
    seed: int = 0,
    traced: Iterable[Message] = (),
    records_per_frame: int = DEFAULT_RECORDS_PER_FRAME,
) -> EncodedTrace:
    """One-shot encode with slice widths derived from *traced*."""
    encoder = TraceEncoder(
        scenario=scenario,
        seed=seed,
        slice_widths=slice_widths_for(traced),
        records_per_frame=records_per_frame,
    )
    return encoder.encode(records)
