"""Batch and incremental decoding of framed bitstreams.

``decode(encode(trace)) == trace`` on clean input; on corrupted input
the decoder degrades the way the framing layer is designed to: a bad
CRC (or torn write) costs exactly the frame it lands in, the reader
re-synchronizes on the next sync marker, and every loss is surfaced as
a :class:`DecodeDiagnostic` -- the binary analogue of the incremental
text parser's :class:`~repro.stream.ingest.ParseDiagnostic`.

Two entry points:

* :func:`decode_stream` -- one-shot decode of a complete byte string.
* :class:`IncrementalFrameDecoder` -- chunk-at-a-time decode for the
  streaming layer; a chunk may end mid-frame, mid-header, anywhere.
  Records are emitted as soon as their frame completes and verifies,
  which is what lets :class:`repro.stream.ingest.
  CompressedTraceIngester` feed an online localizer from a live
  bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.compress.encoder import (
    RUN_SYMBOL,
    STREAM_VERSION,
    SymbolEntry,
    SymbolTable,
)
from repro.compress.framing import (
    FRAME_DATA,
    FRAME_HEADER,
    BitReader,
    Frame,
    scan_frames,
)
from repro.core.message import IndexedMessage, Message
from repro.errors import CompressionError
from repro.sim.engine import TraceRecord


@dataclass(frozen=True)
class DecodeDiagnostic:
    """One recoverable decode problem (the stream kept going)."""

    kind: str  #: ``"framing" | "header" | "frame" | "record" | "gap"``
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.detail}"


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a batch decode."""

    records: Tuple[TraceRecord, ...]
    scenario: str
    seed: int
    diagnostics: Tuple[DecodeDiagnostic, ...]
    frames_decoded: int
    records_dropped: int


def _parse_header_payload(
    payload: bytes,
) -> Tuple[str, int, int, SymbolTable]:
    """``(scenario, seed, records_per_frame, table)`` from a header
    frame payload."""
    reader = BitReader(payload)
    version = reader.read(8)
    if version != STREAM_VERSION:
        raise CompressionError(
            f"unsupported stream version {version} "
            f"(this decoder speaks {STREAM_VERSION})"
        )
    scenario = reader.read_bytes(reader.read_varint()).decode("utf-8")
    seed = reader.read_zigzag()
    records_per_frame = reader.read_varint()
    entries: List[SymbolEntry] = []
    for _ in range(reader.read_varint()):
        index = reader.read_varint()
        name = reader.read_bytes(reader.read_varint()).decode("utf-8")
        value_bits = reader.read_varint()
        entries.append(SymbolEntry(index, name, value_bits))
    return scenario, seed, records_per_frame, SymbolTable(tuple(entries))


def _decode_data_payload(
    payload: bytes,
    table: SymbolTable,
    catalog: Mapping[str, Message],
) -> Tuple[List[TraceRecord], List[DecodeDiagnostic]]:
    """Decode one data frame payload into records.

    Messages missing from *catalog* are skipped with a diagnostic --
    the bit layout is fully described by the symbol table, so decoding
    continues past them.
    """
    reader = BitReader(payload)
    sym_bits = table.symbol_bits
    count = reader.read_varint()
    records: List[TraceRecord] = []
    diagnostics: List[DecodeDiagnostic] = []
    emitted = 0
    cycle = 0
    last: Optional[Tuple[SymbolEntry, int]] = None  # (entry, value)
    while emitted < count:
        symbol = reader.read(sym_bits)
        if symbol == RUN_SYMBOL:
            if last is None:
                raise CompressionError("RUN token before any record")
            run = reader.read_varint()
            stride = reader.read_zigzag()
            entry, value = last
            message = catalog.get(entry.name)
            for _ in range(run):
                cycle += stride
                emitted += 1
                if message is not None:
                    records.append(
                        TraceRecord(
                            cycle=cycle,
                            message=IndexedMessage(message, entry.index),
                            value=value,
                        )
                    )
            continue
        entry = table.entry(symbol)
        if emitted == 0:
            cycle = reader.read_varint()
        else:
            cycle += reader.read_zigzag()
        value = reader.read(entry.value_bits)
        emitted += 1
        last = (entry, value)
        message = catalog.get(entry.name)
        if message is None:
            diagnostics.append(
                DecodeDiagnostic(
                    "record", f"unknown message {entry.name!r}"
                )
            )
            continue
        records.append(
            TraceRecord(
                cycle=cycle,
                message=IndexedMessage(message, entry.index),
                value=value,
            )
        )
    return records, diagnostics


class IncrementalFrameDecoder:
    """Decodes a framed bitstream arriving in arbitrary byte chunks.

    Parameters
    ----------
    catalog:
        Message definitions by name (as for the trace-file readers).

    Notes
    -----
    Frames are decoded as soon as their bytes complete and their CRC
    verifies; anything unrecoverable becomes a diagnostic, never an
    exception -- a live session survives corrupt captures.  Sequence
    numbers are tracked so dropped frames (eviction upstream, loss in
    transport) are reported as ``"gap"`` diagnostics.
    """

    def __init__(self, catalog: Mapping[str, Message]) -> None:
        self._catalog = dict(catalog)
        self._buffer = b""
        self._closed = False
        self._table: Optional[SymbolTable] = None
        self._expected_seq: Optional[int] = None
        self._diagnostics: List[DecodeDiagnostic] = []
        self._frames_decoded = 0
        self._records_emitted = 0
        self._records_dropped = 0
        self.scenario: str = ""
        self.seed: int = 0

    # ------------------------------------------------------------------
    @property
    def diagnostics(self) -> Tuple[DecodeDiagnostic, ...]:
        return tuple(self._diagnostics)

    @property
    def header_seen(self) -> bool:
        return self._table is not None

    @property
    def frames_decoded(self) -> int:
        """Data frames successfully decoded (the header is reported
        through :attr:`header_seen`)."""
        return self._frames_decoded

    @property
    def records_emitted(self) -> int:
        return self._records_emitted

    @property
    def records_dropped(self) -> int:
        """Records lost to skipped frames or unknown messages."""
        return self._records_dropped

    # ------------------------------------------------------------------
    def feed(self, chunk: bytes) -> Tuple[TraceRecord, ...]:
        """Consume *chunk*, returning records whose frames completed."""
        if self._closed:
            raise CompressionError("decoder is closed; no further chunks")
        self._buffer += chunk
        frames, consumed, framing = scan_frames(self._buffer, eof=False)
        self._buffer = self._buffer[consumed:]
        return self._emit(frames, framing)

    def close(self) -> Tuple[TraceRecord, ...]:
        """Flush any complete trailing frame and seal the decoder."""
        if self._closed:
            return ()
        self._closed = True
        frames, _, framing = scan_frames(self._buffer, eof=True)
        self._buffer = b""
        return self._emit(frames, framing)

    # ------------------------------------------------------------------
    # durable-state hooks (used by repro.store snapshots)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Decoder state as a JSON-able dict.

        The buffered partial frame is carried base64-encoded; the
        symbol table is carried as its entry list, so restoring never
        needs the original header frame bytes.
        """
        import base64

        return {
            "buffer": base64.b64encode(self._buffer).decode("ascii"),
            "closed": self._closed,
            "table": (
                None
                if self._table is None
                else [
                    [e.index, e.name, e.value_bits]
                    for e in self._table.entries
                ]
            ),
            "expected_seq": self._expected_seq,
            "diagnostics": [
                [d.kind, d.detail] for d in self._diagnostics
            ],
            "frames_decoded": self._frames_decoded,
            "records_emitted": self._records_emitted,
            "records_dropped": self._records_dropped,
            "scenario": self.scenario,
            "seed": self.seed,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite decoder state with an :meth:`export_state` dict."""
        import base64

        self._buffer = base64.b64decode(state["buffer"])
        self._closed = bool(state["closed"])
        table = state["table"]
        self._table = (
            None
            if table is None
            else SymbolTable(
                tuple(
                    SymbolEntry(int(index), name, int(value_bits))
                    for index, name, value_bits in table
                )
            )
        )
        seq = state["expected_seq"]
        self._expected_seq = None if seq is None else int(seq)
        self._diagnostics = [
            DecodeDiagnostic(kind, detail)
            for kind, detail in state["diagnostics"]
        ]
        self._frames_decoded = int(state["frames_decoded"])
        self._records_emitted = int(state["records_emitted"])
        self._records_dropped = int(state["records_dropped"])
        self.scenario = state["scenario"]
        self.seed = int(state["seed"])

    # ------------------------------------------------------------------
    def _emit(
        self, frames: List[Frame], framing: List[str]
    ) -> Tuple[TraceRecord, ...]:
        for detail in framing:
            self._diagnostics.append(DecodeDiagnostic("framing", detail))
        out: List[TraceRecord] = []
        for frame in frames:
            if frame.frame_type == FRAME_HEADER:
                try:
                    (self.scenario, self.seed, _, self._table) = (
                        _parse_header_payload(frame.payload)
                    )
                    self._expected_seq = 1
                except CompressionError as exc:
                    self._diagnostics.append(
                        DecodeDiagnostic("header", str(exc))
                    )
                continue
            if frame.frame_type != FRAME_DATA:
                self._diagnostics.append(
                    DecodeDiagnostic(
                        "frame", f"unknown frame type {frame.frame_type}"
                    )
                )
                continue
            if self._table is None:
                self._diagnostics.append(
                    DecodeDiagnostic(
                        "frame",
                        f"data frame seq={frame.seq} before any header",
                    )
                )
                continue
            if (
                self._expected_seq is not None
                and frame.seq != self._expected_seq & 0xFFFF
            ):
                self._diagnostics.append(
                    DecodeDiagnostic(
                        "gap",
                        f"expected frame seq="
                        f"{self._expected_seq & 0xFFFF}, got {frame.seq} "
                        "(frame(s) lost)",
                    )
                )
            self._expected_seq = frame.seq + 1
            try:
                records, diags = _decode_data_payload(
                    frame.payload, self._table, self._catalog
                )
            except CompressionError as exc:
                self._diagnostics.append(
                    DecodeDiagnostic(
                        "frame", f"undecodable frame seq={frame.seq}: {exc}"
                    )
                )
                continue
            self._diagnostics.extend(diags)
            self._records_dropped += len(diags)
            self._records_emitted += len(records)
            self._frames_decoded += 1
            out.extend(records)
        return tuple(out)


def decode_stream(
    data: bytes, catalog: Mapping[str, Message]
) -> DecodeResult:
    """One-shot decode of a complete framed bitstream."""
    decoder = IncrementalFrameDecoder(catalog)
    records = decoder.feed(data) + decoder.close()
    return DecodeResult(
        records=records,
        scenario=decoder.scenario,
        seed=decoder.seed,
        diagnostics=decoder.diagnostics,
        frames_decoded=decoder.frames_decoded,
        records_dropped=decoder.records_dropped,
    )
