"""Lightweight run records for orchestrated work.

Every orchestrated run (a bug sweep, a campaign, a table regeneration)
produces a :class:`RunRecord`: what ran, how wide, how long, how many
tasks failed, and what the artifact cache did for it.  Records
accumulate in a small process-wide ring buffer and are exportable as
JSON -- ``python -m repro cache stats --json`` includes them, and
long-running services can ship them to whatever collector they use.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, IO, List, Optional

#: How many recent run records the process keeps.
HISTORY = 64


@dataclass
class RunRecord:
    """Telemetry for one orchestrated run."""

    name: str
    jobs: int = 1
    tasks_dispatched: int = 0
    tasks_completed: int = 0
    tasks_failed: int = 0
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    started_at: float = field(default_factory=time.time)
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "jobs": self.jobs,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_completed": self.tasks_completed,
            "tasks_failed": self.tasks_failed,
            "wall_time_s": round(self.wall_time_s, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "started_at": self.started_at,
            "extra": self.extra,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


_RECORDS: Deque[RunRecord] = deque(maxlen=HISTORY)


def record_run(record: RunRecord) -> RunRecord:
    """Append *record* to the process history and return it."""
    _RECORDS.append(record)
    return record


def recent_runs(
    limit: Optional[int] = None, name_prefix: Optional[str] = None
) -> List[RunRecord]:
    """Most recent records, oldest first.

    *name_prefix* keeps only records whose ``name`` starts with it --
    e.g. ``name_prefix="stream:"`` isolates per-session streaming
    telemetry from table-regeneration runs sharing the ring buffer.
    """
    records = list(_RECORDS)
    if name_prefix is not None:
        records = [r for r in records if r.name.startswith(name_prefix)]
    if limit is not None:
        records = records[-limit:]
    return records


def clear_runs() -> None:
    _RECORDS.clear()


def export_runs(stream: IO[str], limit: Optional[int] = None) -> int:
    """Write recent records to *stream* as a JSON array; returns the
    record count."""
    records = [r.as_dict() for r in recent_runs(limit)]
    json.dump(records, stream, indent=2, sort_keys=True)
    stream.write("\n")
    return len(records)
