"""Campaign orchestration: parallel fan-out + telemetry in one call.

The orchestrator is the piece consumers actually talk to.  It wraps
:func:`repro.runtime.parallel.run_tasks` with a telemetry envelope:
wall time, task counts, and the artifact-cache hit/miss delta observed
during the run, recorded as a :class:`~repro.runtime.telemetry.RunRecord`
in the process history.

    results, record = orchestrate(_worker, items, jobs=4, name="sweep")

Failures policy: by default a task exception aborts the run (matching
what a serial loop would do); with ``collect_errors=True`` each task
instead resolves to a :class:`TaskFailure` so campaigns can tolerate
bad units while recording them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.runtime.cache import ArtifactCache, default_cache
from repro.runtime.parallel import resolve_jobs, run_tasks
from repro.runtime.telemetry import RunRecord, record_run


@dataclass(frozen=True)
class TaskFailure:
    """Placeholder result for a task that raised (collect mode)."""

    index: int
    error_type: str
    message: str


def orchestrate(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    timeout: Optional[float] = None,
    name: str = "run",
    cache: Optional[ArtifactCache] = None,
    collect_errors: bool = False,
) -> Tuple[List[Any], RunRecord]:
    """Run *fn* over *items* and return ``(results, record)``.

    Results are in item order (parallel and serial runs produce the
    same list).  The record is already appended to the telemetry
    history when this returns.
    """
    work = list(items)
    cache = cache if cache is not None else default_cache()
    hits0 = cache.stats.hits
    misses0 = cache.stats.misses
    record = RunRecord(
        name=name,
        jobs=resolve_jobs(jobs),
        tasks_dispatched=len(work),
    )
    wrapped = _failure_collector(fn) if collect_errors else fn
    start = time.perf_counter()
    try:
        results = run_tasks(wrapped, work, jobs=jobs, timeout=timeout)
    except BaseException:
        record.wall_time_s = time.perf_counter() - start
        record.tasks_failed = len(work)
        record_run(record)
        raise
    record.wall_time_s = time.perf_counter() - start
    failures = sum(1 for r in results if isinstance(r, TaskFailure))
    if collect_errors:
        results = [
            _restamp(r, i) if isinstance(r, TaskFailure) else r
            for i, r in enumerate(results)
        ]
    record.tasks_failed = failures
    record.tasks_completed = len(work) - failures
    # cache deltas only see this process's side of a parallel run
    # (workers keep their own counters); still the right warm/cold signal
    record.cache_hits = cache.stats.hits - hits0
    record.cache_misses = cache.stats.misses - misses0
    record_run(record)
    return results, record


class _failure_collector:
    """Picklable wrapper turning task exceptions into TaskFailure."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        try:
            return self.fn(item)
        except Exception as exc:
            return TaskFailure(
                index=-1, error_type=type(exc).__name__, message=str(exc)
            )


def _restamp(failure: TaskFailure, index: int) -> TaskFailure:
    return TaskFailure(
        index=index,
        error_type=failure.error_type,
        message=failure.message,
    )
