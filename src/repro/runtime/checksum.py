"""Shared CRC-16 used by every framed byte format in the project.

Three on-disk/on-wire formats carry the same checksum: the compressed
trace bitstream (:mod:`repro.compress.framing`), the debug-service
wire protocol (:mod:`repro.server.protocol`), and the session store's
write-ahead log (:mod:`repro.store.wal`).  They historically each
reached into :func:`repro.compress.framing.crc16`; this module is the
single home so a transport package never has to import the codec.

The polynomial is CRC-16/CCITT-FALSE: ``poly=0x1021``, ``init=0xFFFF``,
no reflection, no final xor.  Check value: ``crc16(b"123456789") ==
0x29B1``.  The implementation here is table-driven (one 256-entry
table built at import) and bit-identical to the original bitwise
loop, which is kept as :func:`crc16_bitwise` for tests and as the
reference definition.
"""

from __future__ import annotations

from typing import Tuple

#: Generator polynomial (x^16 + x^12 + x^5 + 1), normal representation.
CRC16_POLY = 0x1021

#: Initial shift-register value.
CRC16_INIT = 0xFFFF


def _build_table() -> Tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ CRC16_POLY) if crc & 0x8000 else crc << 1
            crc &= 0xFFFF
        table.append(crc)
    return tuple(table)


#: ``_TABLE[b]`` is the CRC of the single byte ``b`` with init 0.
_TABLE = _build_table()


def crc16(data: bytes, crc: int = CRC16_INIT) -> int:
    """CRC-16/CCITT-FALSE over *data*, continuing from *crc*."""
    table = _TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc16_bitwise(data: bytes, crc: int = CRC16_INIT) -> int:
    """Reference bit-at-a-time implementation (the original loop that
    lived in ``repro.compress.framing``); kept for equivalence tests."""
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ CRC16_POLY) if crc & 0x8000 else crc << 1
            crc &= 0xFFFF
    return crc


__all__ = ["CRC16_INIT", "CRC16_POLY", "crc16", "crc16_bitwise"]
