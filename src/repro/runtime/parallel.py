"""Process-pool fan-out with deterministic ordering and serial fallback.

``run_tasks(fn, items)`` is the single primitive every parallel code
path in the library routes through.  Guarantees:

* **Determinism** -- results come back in *item order*, never in
  completion order, so ``jobs=8`` is byte-identical to ``jobs=1``.
* **Graceful degradation** -- ``jobs=1``, an unavailable
  ``multiprocessing`` (restricted environments), or an unpicklable
  worker falls back to an in-process loop instead of failing.
* **Per-task timeout** -- enforced in pool mode; a task overrunning
  its budget raises :class:`~repro.errors.OrchestrationError`.

Workers must be module-level callables (the usual pickling rule); each
item is passed as a single argument.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import OrchestrationError


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` parameter: ``None``/``0`` means one worker
    per CPU; negative values are rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise OrchestrationError(f"jobs must be >= 0, got {jobs}")
    return jobs


def run_tasks(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    timeout: Optional[float] = None,
    fallback: bool = True,
) -> List[Any]:
    """Apply *fn* to every item, possibly across worker processes.

    Parameters
    ----------
    fn:
        Module-level callable applied to each item.
    items:
        The work units (materialized up front; ordering is preserved).
    jobs:
        Worker process count; ``1`` runs serially in-process, ``0`` or
        ``None`` uses all CPUs.
    timeout:
        Per-task wall-clock budget in seconds (pool mode only -- a
        serial in-process task cannot be preempted portably).
    fallback:
        Whether pool-setup failures degrade to the serial path.

    Raises
    ------
    OrchestrationError
        On per-task timeout or a worker crash (serial-path exceptions
        and in-task exceptions propagate unwrapped).
    """
    work: Sequence[Any] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        return _run_pool(fn, work, jobs, timeout)
    except OrchestrationError:
        raise
    except (ImportError, OSError, PermissionError,
            pickle.PicklingError, AttributeError, TypeError):
        # no usable multiprocessing here (sandbox, __main__-less
        # embedding, unpicklable worker): degrade, don't die
        if not fallback:
            raise
        return [fn(item) for item in work]


def _run_pool(
    fn: Callable[[Any], Any],
    work: Sequence[Any],
    jobs: int,
    timeout: Optional[float],
) -> List[Any]:
    import concurrent.futures as cf
    from concurrent.futures.process import BrokenProcessPool

    results: List[Any] = [None] * len(work)
    max_workers = min(jobs, len(work))
    with cf.ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(fn, item) for item in work]
        try:
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result(timeout=timeout)
                except cf.TimeoutError as exc:
                    raise OrchestrationError(
                        f"task {index} exceeded its {timeout}s budget"
                    ) from exc
                except BrokenProcessPool as exc:
                    raise OrchestrationError(
                        f"worker pool died while running task {index}"
                    ) from exc
        finally:
            for future in futures:
                future.cancel()
    return results
