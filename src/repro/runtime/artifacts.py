"""Content-addressed artifact keys.

An *artifact* is any expensive, deterministic derivation: an
interleaved-flow product, a mutual-information table, a
:class:`~repro.selection.selector.SelectionResult`, a full scenario
selection bundle.  Because every derivation in this library is a pure
function of its inputs, an artifact is fully identified by a *key*:
a stable hash over the artifact kind and the canonicalized inputs.

Keys must be reproducible **across processes and Python invocations**
(``PYTHONHASHSEED`` randomizes ``hash()``, so we never use it) -- the
disk cache relies on a warm entry written by one process being found
by the next.  Canonicalization therefore only accepts values with an
unambiguous text form: ``None``, booleans, integers, floats, strings,
and (possibly nested) tuples/lists/dicts/sets of those.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence, Set

from repro.errors import ArtifactKeyError

#: Bump when the canonicalization scheme (not the cached payloads)
#: changes incompatibly; part of every key.
KEY_SCHEMA = 1


def canonical_token(value: object) -> str:
    """Render *value* as an unambiguous, order-stable text token.

    Raises
    ------
    ArtifactKeyError
        If *value* (or a nested element) has no canonical form.
        Arbitrary objects are rejected rather than ``repr()``-ed:
        a default ``repr`` embeds the object address, which would
        silently make every key unique and the cache useless.
    """
    if value is None or isinstance(value, (bool, int)):
        return repr(value)
    if isinstance(value, float):
        # repr() round-trips floats exactly in Python 3
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, bytes):
        return "bytes:" + value.hex()
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_token(k), canonical_token(v))
            for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "s{" + ",".join(sorted(canonical_token(v) for v in value)) + "}"
    if isinstance(value, Sequence):
        return "[" + ",".join(canonical_token(v) for v in value) + "]"
    raise ArtifactKeyError(
        f"cannot canonicalize {type(value).__name__!r} value {value!r} "
        f"into an artifact key; pass primitives or containers of them"
    )


def artifact_key(kind: str, **fields: object) -> str:
    """Content-addressed key for an artifact of *kind* with *fields*.

    The key is a hex SHA-256 digest prefixed by the kind, e.g.
    ``"scenario-selection-5f0c..."`` -- readable in a cache directory
    listing while still collision-resistant.  Field order does not
    matter; field *names* do.
    """
    if not kind or any(c in kind for c in "/\\ \t\n"):
        raise ArtifactKeyError(f"invalid artifact kind {kind!r}")
    payload = canonical_token(
        {"schema": KEY_SCHEMA, "kind": kind, "fields": dict(fields)}
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"{kind}-{digest}"


def message_fingerprint(messages: Sequence[object]) -> str:
    """Cheap structural fingerprint of a message pool.

    Guards cached selections against edits to the flow/catalog
    definitions: if a message is renamed, re-widthed, or re-routed the
    fingerprint (and therefore the key) changes and the stale entry is
    simply never looked up again.
    """
    rows = sorted(
        (
            getattr(m, "name", ""),
            getattr(m, "width", 0),
            getattr(m, "source", "") or "",
            getattr(m, "destination", "") or "",
            getattr(m, "parent", "") or "",
        )
        for m in messages
    )
    digest = hashlib.sha256(
        canonical_token(rows).encode("utf-8")
    ).hexdigest()
    return digest[:16]
