"""Runtime substrate: artifact caching, parallel fan-out, telemetry.

This package is the scaling layer under the experiment drivers, the
debug campaigns, and the CLI:

* :mod:`repro.runtime.artifacts` -- content-addressed keys for
  expensive derivations (interleavings, MI tables, selections).
* :mod:`repro.runtime.cache` -- disk-backed artifact store with an
  in-memory LRU front (``REPRO_CACHE_DIR`` overrides the location).
* :mod:`repro.runtime.parallel` -- deterministic process-pool map
  with per-task timeout and graceful serial fallback.
* :mod:`repro.runtime.orchestrator` -- parallel runs wrapped in
  telemetry.
* :mod:`repro.runtime.telemetry` -- JSON-exportable run records.
* :mod:`repro.runtime.checksum` -- the shared CRC-16/CCITT-FALSE used
  by the compressed-trace frames, the wire protocol, and the session
  store's write-ahead log.
"""

from repro.runtime.artifacts import (
    artifact_key,
    canonical_token,
    message_fingerprint,
)
from repro.runtime.checksum import crc16, crc16_bitwise
from repro.runtime.cache import (
    ArtifactCache,
    CacheSnapshot,
    CacheStats,
    default_cache,
    resolve_cache_dir,
    set_default_cache,
)
from repro.runtime.orchestrator import TaskFailure, orchestrate
from repro.runtime.parallel import resolve_jobs, run_tasks
from repro.runtime.telemetry import (
    RunRecord,
    clear_runs,
    export_runs,
    recent_runs,
    record_run,
)

__all__ = [
    "artifact_key",
    "canonical_token",
    "message_fingerprint",
    "crc16",
    "crc16_bitwise",
    "ArtifactCache",
    "CacheSnapshot",
    "CacheStats",
    "default_cache",
    "resolve_cache_dir",
    "set_default_cache",
    "TaskFailure",
    "orchestrate",
    "resolve_jobs",
    "run_tasks",
    "RunRecord",
    "clear_runs",
    "export_runs",
    "recent_runs",
    "record_run",
]
