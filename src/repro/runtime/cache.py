"""Disk-backed, content-addressed artifact cache with an LRU front.

Layout: one pickle file per key under the cache directory (resolved
from, in order: an explicit ``directory`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``$XDG_CACHE_HOME/repro``,
``~/.cache/repro``).  Writes are atomic (temp file + ``os.replace``)
so a killed process never leaves a half-written entry; loads are
corruption-tolerant -- a truncated or unreadable pickle is deleted and
treated as a miss, never propagated to the caller.

The in-memory LRU front keeps the hottest artifacts as live objects,
which also preserves identity: two ``get_or_compute`` calls for the
same key in one process return the *same* object.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_PICKLE_SUFFIX = ".pkl"


def resolve_cache_dir(directory: Optional[os.PathLike] = None) -> Path:
    """The cache directory to use (not created until first write)."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/size counters for one :class:`ArtifactCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    load_errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "load_errors": self.load_errors,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class CacheSnapshot:
    """Stats plus on-disk footprint, for ``repro cache stats``."""

    directory: str
    memory_entries: int
    disk_entries: int
    disk_bytes: int
    stats: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "directory": self.directory,
            "memory_entries": self.memory_entries,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "stats": self.stats,
        }


class ArtifactCache:
    """Content-addressed artifact store: LRU memory front + disk back.

    Parameters
    ----------
    directory:
        Cache directory (see :func:`resolve_cache_dir`).
    memory_slots:
        Capacity of the in-memory LRU front (0 disables it).
    persist:
        Whether to read/write the disk layer.  ``False`` gives a
        process-local memoizer with the same interface.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        memory_slots: int = 128,
        persist: bool = True,
    ) -> None:
        self.directory = resolve_cache_dir(directory)
        self.memory_slots = max(0, int(memory_slots))
        self.persist = persist
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # core protocol
    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(found, value)`` -- a miss returns ``(False, None)``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return True, self._memory[key]
            if self.persist:
                found, value = self._disk_load(key)
                if found:
                    self.stats.disk_hits += 1
                    self._memory_put(key, value)
                    return True, value
            self.stats.misses += 1
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* in both layers."""
        with self._lock:
            self._memory_put(key, value)
            if self.persist:
                self._disk_store(key, value)
            self.stats.stores += 1

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, computing and storing it
        on a miss.  The computation runs outside the cache lock."""
        found, value = self.get(key)
        if found:
            return value
        value = compute()
        self.put(key, value)
        return value

    def invalidate(self, key: str) -> bool:
        """Drop *key* from both layers; ``True`` if anything existed."""
        with self._lock:
            existed = self._memory.pop(key, _MISSING) is not _MISSING
            path = self._path(key)
            if self.persist and path.exists():
                try:
                    path.unlink()
                    existed = True
                except OSError:
                    pass
            if existed:
                self.stats.invalidations += 1
            return existed

    def clear(self) -> int:
        """Drop every entry; returns the number of disk files removed."""
        with self._lock:
            self._memory.clear()
            removed = 0
            if self.persist and self.directory.is_dir():
                for path in self.directory.glob(f"*{_PICKLE_SUFFIX}"):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            return removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.persist and self._path(key).exists()

    def disk_entries(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob(f"*{_PICKLE_SUFFIX}"))

    def disk_bytes(self) -> int:
        if not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob(f"*{_PICKLE_SUFFIX}"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def snapshot(self) -> CacheSnapshot:
        return CacheSnapshot(
            directory=str(self.directory),
            memory_entries=len(self._memory),
            disk_entries=self.disk_entries(),
            disk_bytes=self.disk_bytes(),
            stats=self.stats.as_dict(),
        )

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def _memory_put(self, key: str, value: Any) -> None:
        if self.memory_slots == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_PICKLE_SUFFIX}"

    def _disk_load(self, key: str) -> Tuple[bool, Any]:
        path = self._path(key)
        try:
            with path.open("rb") as stream:
                return True, pickle.load(stream)
        except FileNotFoundError:
            return False, None
        except Exception:
            # truncated/corrupt/incompatible entry: discard and recompute
            self.stats.load_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def _disk_store(self, key: str, value: Any) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, suffix=_PICKLE_SUFFIX + ".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as stream:
                    pickle.dump(value, stream, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # a read-only filesystem or unpicklable artifact degrades
            # to memory-only caching, never to a crash
            pass


_MISSING = object()

_default_cache: Optional[ArtifactCache] = None
_default_lock = threading.Lock()


def default_cache() -> ArtifactCache:
    """The process-wide cache (created lazily; honours the
    ``REPRO_CACHE_DIR`` environment at creation time)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = ArtifactCache()
        return _default_cache


def set_default_cache(cache: Optional[ArtifactCache]) -> None:
    """Replace (or with ``None``, reset) the process-wide cache --
    used by tests and by the CLI to honour late env changes."""
    global _default_cache
    with _default_lock:
        _default_cache = cache
