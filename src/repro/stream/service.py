"""A concurrent front end over :class:`~repro.stream.session.
SessionManager` -- stdlib only.

:class:`StreamService` drives whole sessions on a thread pool: one
task opens a session, feeds its record chunks in order, snapshots, and
closes.  Per-session ordering is guaranteed by construction (a
session's chunks never leave its task); cross-session isolation is the
manager's job and is what the load test below exercises.

:func:`run_load_test` is the reusable synthetic workload behind
``python -m repro serve-demo`` and ``benchmarks/stream_bench.py``: N
validators following N independent simulated failing runs, reported as
aggregate records/sec plus p95/max per-feed latency.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.interleave import InterleavedFlow
from repro.core.message import Message
from repro.errors import StreamError
from repro.selection.localization import LocalizationResult
from repro.sim.engine import TraceRecord, TransactionSimulator
from repro.stream.incremental import Observable
from repro.stream.session import SessionLimits, SessionManager


@dataclass(frozen=True)
class SessionOutcome:
    """Everything one driven session produced."""

    session_id: str
    result: LocalizationResult
    status: str
    records: int
    feed_latencies_s: Tuple[float, ...]


@dataclass(frozen=True)
class LoadTestReport:
    """Aggregate numbers from one synthetic multi-session run."""

    sessions: int
    workers: int
    chunk_size: int
    mode: str
    total_records: int
    wall_s: float
    records_per_s: float
    p95_feed_latency_s: float
    max_feed_latency_s: float
    outcomes: Tuple[SessionOutcome, ...]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (per-session payloads reduced to the
        numbers dashboards plot)."""
        return {
            "sessions": self.sessions,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "mode": self.mode,
            "total_records": self.total_records,
            "wall_s": round(self.wall_s, 6),
            "records_per_s": round(self.records_per_s, 3),
            "p95_feed_latency_s": round(self.p95_feed_latency_s, 6),
            "max_feed_latency_s": round(self.max_feed_latency_s, 6),
            "statuses": {
                status: sum(1 for o in self.outcomes if o.status == status)
                for status in sorted({o.status for o in self.outcomes})
            },
            "fractions": [
                round(o.result.fraction, 8) for o in self.outcomes
            ],
        }


class StreamService:
    """Drives sessions over a :class:`ThreadPoolExecutor`.

    The localization DP is pure Python, so threads do not speed a
    single session up; what the pool buys is *multiplexing* -- many
    validators served concurrently with bounded workers -- and a
    permanent concurrency test of the manager's locking.
    """

    def __init__(self, manager: SessionManager, workers: int = 4) -> None:
        if workers < 1:
            raise StreamError(f"workers must be >= 1, got {workers}")
        self.manager = manager
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-stream"
        )

    # ------------------------------------------------------------------
    def run_session(
        self,
        chunks: Iterable[Sequence[Observable]],
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        drop_invisible: bool = False,
    ) -> SessionOutcome:
        """Open, feed every chunk in order, snapshot, close (synchronous)."""
        sid = self.manager.open(session_id, mode=mode)
        latencies: List[float] = []
        records = 0
        try:
            for chunk in chunks:
                started = time.perf_counter()
                outcome = self.manager.feed(
                    sid, chunk, drop_invisible=drop_invisible
                )
                latencies.append(time.perf_counter() - started)
                records += outcome.consumed
            result = self.manager.snapshot(sid)
        finally:
            record = self.manager.close(sid)
        return SessionOutcome(
            session_id=sid,
            result=result,
            status=str(record.extra["status"]),
            records=records,
            feed_latencies_s=tuple(latencies),
        )

    def submit_session(
        self,
        chunks: Sequence[Sequence[Observable]],
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        drop_invisible: bool = False,
    ) -> "Future[SessionOutcome]":
        """Schedule :meth:`run_session` on the pool."""
        if self._pool is None:
            raise StreamError("service is shut down")
        return self._pool.submit(
            self.run_session, chunks, session_id, mode, drop_invisible
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "StreamService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
def chunked(
    records: Sequence[Observable], size: int
) -> List[Tuple[Observable, ...]]:
    """Split *records* into feed-sized chunks (last one may be short)."""
    if size < 1:
        raise StreamError(f"chunk size must be >= 1, got {size}")
    return [
        tuple(records[i : i + size]) for i in range(0, len(records), size)
    ]


def synthetic_session_records(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    seed: int,
    scenario_name: str = "stream-demo",
) -> Tuple[TraceRecord, ...]:
    """One simulated failing run's capture: a seeded golden run
    projected onto the traced set (what the buffer would hold)."""
    simulator = TransactionSimulator(interleaved, scenario_name)
    trace = simulator.run(seed=seed)
    return trace.project(tuple(traced))


def run_load_test(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    sessions: int = 8,
    workers: int = 4,
    chunk_size: int = 16,
    seed: int = 0,
    mode: str = "prefix",
    limits: Optional[SessionLimits] = None,
) -> LoadTestReport:
    """Drive *sessions* concurrent synthetic validators to completion.

    Each session follows its own seeded simulated run (seeds
    ``seed .. seed+sessions-1``), fed in *chunk_size* record chunks.
    Determinism: the produced localization fractions depend only on
    the seeds, never on thread scheduling -- which is exactly the
    cross-session isolation guarantee the acceptance tests pin down.
    """
    if sessions < 1:
        raise StreamError(f"sessions must be >= 1, got {sessions}")
    traced = tuple(traced)
    if limits is None:
        limits = SessionLimits(max_sessions=max(sessions, 1))
    manager = SessionManager(interleaved, traced, mode=mode, limits=limits)
    workloads = [
        chunked(
            synthetic_session_records(interleaved, traced, seed + i),
            chunk_size,
        )
        for i in range(sessions)
    ]
    started = time.perf_counter()
    with StreamService(manager, workers=workers) as service:
        futures = [
            service.submit_session(chunks, session_id=f"demo-{i:04d}")
            for i, chunks in enumerate(workloads)
        ]
        outcomes = tuple(f.result() for f in futures)
    wall = time.perf_counter() - started
    latencies = sorted(
        latency for o in outcomes for latency in o.feed_latencies_s
    )
    total_records = sum(o.records for o in outcomes)
    return LoadTestReport(
        sessions=sessions,
        workers=workers,
        chunk_size=chunk_size,
        mode=mode,
        total_records=total_records,
        wall_s=wall,
        records_per_s=total_records / wall if wall > 0 else 0.0,
        p95_feed_latency_s=_percentile(latencies, 0.95),
        max_feed_latency_s=latencies[-1] if latencies else 0.0,
        outcomes=outcomes,
    )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]
