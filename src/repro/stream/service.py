"""A concurrent front end over :class:`~repro.stream.session.
SessionManager` -- stdlib only.

:class:`StreamService` drives whole sessions on a thread pool: one
task opens a session, feeds its record chunks in order, snapshots, and
closes.  Per-session ordering is guaranteed by construction (a
session's chunks never leave its task); cross-session isolation is the
manager's job and is what the load test below exercises.  The worker
loop itself lives in :mod:`repro.stream.workload` -- the same
:func:`~repro.stream.workload.drive_session` drives the networked
sessions of :mod:`repro.server.loadgen`, so in-process and wire-level
numbers are directly comparable.

:func:`run_load_test` is the reusable synthetic workload behind
``python -m repro serve-demo`` and ``benchmarks/stream_bench.py``: N
validators following N independent simulated failing runs, reported as
aggregate records/sec plus p95/max per-feed latency.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Optional, Sequence, Tuple

from repro.core.interleave import InterleavedFlow
from repro.core.message import Message
from repro.errors import StreamError
from repro.sim.engine import TraceRecord, TransactionSimulator
from repro.stream.incremental import Observable
from repro.stream.session import SessionLimits, SessionManager
from repro.stream.workload import (
    InProcessTransport,
    LoadTestReport,
    SessionOutcome,
    build_report,
    chunked,
    drive_session,
)
from repro.stream.workload import percentile as _percentile  # noqa: F401

__all__ = [
    "LoadTestReport",
    "SessionOutcome",
    "StreamService",
    "chunked",
    "run_load_test",
    "synthetic_session_records",
]


class StreamService:
    """Drives sessions over a :class:`ThreadPoolExecutor`.

    The localization DP is pure Python, so threads do not speed a
    single session up; what the pool buys is *multiplexing* -- many
    validators served concurrently with bounded workers -- and a
    permanent concurrency test of the manager's locking.
    """

    def __init__(self, manager: SessionManager, workers: int = 4) -> None:
        if workers < 1:
            raise StreamError(f"workers must be >= 1, got {workers}")
        self.manager = manager
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-stream"
        )

    # ------------------------------------------------------------------
    def run_session(
        self,
        chunks: Iterable[Sequence[Observable]],
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        drop_invisible: bool = False,
    ) -> SessionOutcome:
        """Open, feed every chunk in order, snapshot, close (synchronous)."""
        return drive_session(
            InProcessTransport(self.manager, drop_invisible=drop_invisible),
            chunks,
            session_id=session_id,
            mode=mode,
        )

    def submit_session(
        self,
        chunks: Sequence[Sequence[Observable]],
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        drop_invisible: bool = False,
    ) -> "Future[SessionOutcome]":
        """Schedule :meth:`run_session` on the pool."""
        if self._pool is None:
            raise StreamError("service is shut down")
        return self._pool.submit(
            self.run_session, chunks, session_id, mode, drop_invisible
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "StreamService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
def synthetic_session_records(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    seed: int,
    scenario_name: str = "stream-demo",
) -> Tuple[TraceRecord, ...]:
    """One simulated failing run's capture: a seeded golden run
    projected onto the traced set (what the buffer would hold)."""
    simulator = TransactionSimulator(interleaved, scenario_name)
    trace = simulator.run(seed=seed)
    return trace.project(tuple(traced))


def run_load_test(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    sessions: int = 8,
    workers: int = 4,
    chunk_size: int = 16,
    seed: int = 0,
    mode: str = "prefix",
    limits: Optional[SessionLimits] = None,
) -> LoadTestReport:
    """Drive *sessions* concurrent synthetic validators to completion.

    Each session follows its own seeded simulated run (seeds
    ``seed .. seed+sessions-1``), fed in *chunk_size* record chunks.
    Determinism: the produced localization fractions depend only on
    the seeds, never on thread scheduling -- which is exactly the
    cross-session isolation guarantee the acceptance tests pin down.
    """
    if sessions < 1:
        raise StreamError(f"sessions must be >= 1, got {sessions}")
    traced = tuple(traced)
    if limits is None:
        limits = SessionLimits(max_sessions=max(sessions, 1))
    manager = SessionManager(interleaved, traced, mode=mode, limits=limits)
    workloads = [
        chunked(
            synthetic_session_records(interleaved, traced, seed + i),
            chunk_size,
        )
        for i in range(sessions)
    ]
    started = time.perf_counter()
    with StreamService(manager, workers=workers) as service:
        futures = [
            service.submit_session(chunks, session_id=f"demo-{i:04d}")
            for i, chunks in enumerate(workloads)
        ]
        outcomes = tuple(f.result() for f in futures)
    wall = time.perf_counter() - started
    return build_report(
        outcomes,
        workers=workers,
        chunk_size=chunk_size,
        mode=mode,
        wall_s=wall,
    )
