"""Concurrent debug-session management for online localization.

A production debug service faces many validators at once, each
following their own failing run.  :class:`SessionManager` owns one
:class:`~repro.stream.incremental.IncrementalLocalizer` per session
and enforces the limits that keep the process bounded:

* ``max_sessions`` -- the session table never grows past it (idle
  sessions are evicted first; a full table refuses new opens),
* ``max_frontier`` -- per-session DP state is bounded; a session whose
  frontier outgrows it flips to the explicit ``"overflow"`` status and
  freezes at its last consistent snapshot instead of eating the heap,
* ``idle_timeout_s`` -- sessions nobody fed for that long are evicted.

All sessions share one :class:`~repro.selection.localization.
PathLocalizer` per scenario (the adjacency split, topological index,
and path-count tables are read-only), so per-session cost is just the
carried frontier.  Every session's lifecycle ends in a
:class:`~repro.runtime.telemetry.RunRecord` (name ``stream:<id>``)
through the process-wide telemetry ring, same as the batch
orchestrators.

Locking discipline (the multi-shard service sweeps idle sessions from
a different thread than the one feeding them):

* the *manager* lock guards the session table (``open``/``close``/
  ``evict_idle`` mutation, lookups, id allocation, the stats counters),
* a *per-session* lock guards that session's localizer state, so two
  sessions feed concurrently and an eviction sweep cannot retire a
  session mid-feed.

The manager lock is *never* held while waiting on a session lock
(lookups release it first); retiring a session nests the manager lock
inside the session lock, so that is the one nesting order and the pair
cannot deadlock.  ``feed``/``snapshot`` drop the manager lock before
the DP advance -- a long chunk on one session never blocks the table.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.interleave import InterleavedFlow
from repro.core.message import Message
from repro.errors import FrontierOverflowError, StreamError
from repro.runtime.telemetry import RunRecord, record_run
from repro.selection.localization import LocalizationResult, PathLocalizer
from repro.stream.incremental import IncrementalLocalizer, Observable

#: Session lifecycle states.
ACTIVE = "active"
OVERFLOW = "overflow"
CLOSED = "closed"
EVICTED = "evicted"
#: Forcibly retired after repeated poisonous feeds -- the hosting
#: service decided this session's input stream cannot be trusted and
#: quarantined it rather than retrying it forever.
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SessionLimits:
    """Resource bounds one :class:`SessionManager` enforces."""

    max_sessions: int = 64
    max_frontier: Optional[int] = 4096
    idle_timeout_s: float = 300.0


@dataclass(frozen=True)
class FeedOutcome:
    """What one :meth:`SessionManager.feed` call did."""

    session_id: str
    consumed: int
    status: str
    observed_length: int
    frontier_size: int


class StreamSession:
    """One validator's live localization state (owned by the manager)."""

    def __init__(
        self,
        session_id: str,
        localizer: IncrementalLocalizer,
        opened_at: float,
    ) -> None:
        self.session_id = session_id
        self.localizer = localizer
        self.status = ACTIVE
        self.opened_at = opened_at
        self.last_active = opened_at
        self.feeds = 0
        self.records = 0
        #: Serializes this session's localizer mutations against the
        #: eviction sweep; acquired only after (never while waiting
        #: for) the manager lock.
        self.lock = threading.Lock()
        #: Set exactly once, under ``lock``, when the session leaves
        #: the table -- feeds racing an eviction see it and fail with
        #: an "unknown session" error instead of mutating a retired
        #: localizer.
        self.retired = False

    @property
    def mode(self) -> str:
        return self.localizer.mode


class SessionManager:
    """Multiplexes many incremental localization sessions.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow (shared by all sessions).
    traced:
        The traced message set.
    mode:
        Default localization mode for new sessions (overridable per
        :meth:`open`).
    limits:
        Resource bounds; defaults to :class:`SessionLimits`.
    clock:
        Monotonic-seconds source (injectable for eviction tests).
    """

    def __init__(
        self,
        interleaved: InterleavedFlow,
        traced: Iterable[Message],
        mode: str = "prefix",
        limits: Optional[SessionLimits] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limits = limits if limits is not None else SessionLimits()
        self.default_mode = mode
        self._shared = PathLocalizer(interleaved, traced)
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: Dict[str, StreamSession] = {}
        self._next_id = 0
        self._opened = 0
        self._retired: Dict[str, int] = {
            CLOSED: 0, EVICTED: 0, OVERFLOW: 0, QUARANTINED: 0,
        }
        self._feeds = 0
        self._records = 0

    # ------------------------------------------------------------------
    @property
    def shared_localizer(self) -> PathLocalizer:
        return self._shared

    def warm(self) -> "SessionManager":
        """Pre-build the shared localizer's lazy DP tables so the first
        ``open``/``feed`` doesn't pay for them.  Hosts that keep a
        manager per shard call this at startup; returns ``self``."""
        self._shared.warm()
        return self

    def session_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._sessions)

    def session(self, session_id: str) -> StreamSession:
        with self._lock:
            return self._get(session_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, int]:
        """Lifetime counters (for the service metrics plane)."""
        with self._lock:
            return {
                "open_sessions": len(self._sessions),
                "opened": self._opened,
                "closed": self._retired[CLOSED],
                "evicted": self._retired[EVICTED],
                "overflowed": self._retired[OVERFLOW],
                "quarantined": self._retired[QUARANTINED],
                "feeds": self._feeds,
                "records": self._records,
            }

    # ------------------------------------------------------------------
    def open(
        self, session_id: Optional[str] = None, mode: Optional[str] = None
    ) -> str:
        """Open a session; returns its id.

        Evicts idle sessions first; raises :class:`~repro.errors.
        StreamError` when the table is still full or the id is taken.
        """
        self.evict_idle()
        with self._lock:
            if len(self._sessions) >= self.limits.max_sessions:
                raise StreamError(
                    f"session table full ({self.limits.max_sessions}); "
                    "close or evict a session first"
                )
            if session_id is None:
                self._next_id += 1
                session_id = f"s{self._next_id:04d}"
            if session_id in self._sessions:
                raise StreamError(f"session {session_id!r} already open")
            localizer = IncrementalLocalizer(
                mode=mode if mode is not None else self.default_mode,
                max_frontier=self.limits.max_frontier,
                localizer=self._shared,
            )
            self._sessions[session_id] = StreamSession(
                session_id, localizer, self._clock()
            )
            self._opened += 1
            return session_id

    def adopt(
        self,
        session_id: str,
        mode: Optional[str] = None,
        status: str = ACTIVE,
        feeds: int = 0,
        records: int = 0,
        localizer_state: Optional[dict] = None,
    ) -> StreamSession:
        """Re-open a session from persisted state (the store's recovery
        and spill-revival path).

        Like :meth:`open` it honors ``max_sessions`` and refuses a
        taken id, but it additionally restores the localizer's carried
        DP state and the session counters, so the adopted session is
        indistinguishable from one that was fed live.  The caller is
        responsible for fingerprint-checking the state against this
        manager's scenario first.
        """
        if status not in (ACTIVE, OVERFLOW):
            raise StreamError(
                f"cannot adopt a session in status {status!r}"
            )
        self.evict_idle()
        with self._lock:
            if len(self._sessions) >= self.limits.max_sessions:
                raise StreamError(
                    f"session table full ({self.limits.max_sessions}); "
                    "close or evict a session first"
                )
            if session_id in self._sessions:
                raise StreamError(f"session {session_id!r} already open")
            localizer = IncrementalLocalizer(
                mode=mode if mode is not None else self.default_mode,
                max_frontier=self.limits.max_frontier,
                localizer=self._shared,
            )
            if localizer_state is not None:
                localizer.restore_state(localizer_state)
            session = StreamSession(session_id, localizer, self._clock())
            session.status = status
            session.feeds = feeds
            session.records = records
            self._sessions[session_id] = session
            self._opened += 1
            return session

    def export_session(self, session_id: str) -> dict:
        """A session's full durable state (counters + localizer DP) as
        a JSON-able dict -- the inverse of :meth:`adopt`."""
        with self._lock:
            session = self._get(session_id)
        with session.lock:
            if session.retired:
                raise StreamError(f"unknown session {session_id!r}")
            return self._export_locked(session)

    @staticmethod
    def _export_locked(session: StreamSession) -> dict:
        """Durable state of *session* (caller holds ``session.lock``)."""
        return {
            "session_id": session.session_id,
            "mode": session.mode,
            "status": session.status,
            "feeds": session.feeds,
            "records": session.records,
            "localizer": session.localizer.export_state(),
        }

    def feed(
        self,
        session_id: str,
        records: Iterable[Observable],
        drop_invisible: bool = False,
    ) -> FeedOutcome:
        """Feed *records* to a session.

        A frontier overflow does not raise: the session flips to the
        ``"overflow"`` status, keeps its last consistent snapshot, and
        silently ignores further feeds -- the outcome's ``status``
        field is the explicit signal.  ``drop_invisible`` skips records
        the trace buffer would not have captured (raw simulator or
        ingest streams) instead of treating them as an error.
        """
        with self._lock:
            session = self._get(session_id)
        with session.lock:
            if session.retired:
                raise StreamError(f"unknown session {session_id!r}")
            session.last_active = self._clock()
            if session.status == OVERFLOW:
                return self._outcome(session, consumed=0)
            session.feeds += 1
            batch = [
                item
                for item in records
                if not drop_invisible or session.localizer.is_visible(item)
            ]
            before = session.localizer.observed_length
            try:
                consumed = session.localizer.feed(batch)
            except FrontierOverflowError:
                # the localizer froze at the last consistent record;
                # everything before the overflowing one still counts
                consumed = session.localizer.observed_length - before
                session.status = OVERFLOW
            session.records += consumed
            session.last_active = self._clock()
            outcome = self._outcome(session, consumed=consumed)
        with self._lock:
            self._feeds += 1
            self._records += consumed
        return outcome

    def snapshot(self, session_id: str) -> LocalizationResult:
        """The session's current localization (batch-identical)."""
        with self._lock:
            session = self._get(session_id)
        with session.lock:
            if session.retired:
                raise StreamError(f"unknown session {session_id!r}")
            return session.localizer.snapshot()

    def close(self, session_id: str) -> RunRecord:
        """Close a session, emitting its telemetry record."""
        with self._lock:
            session = self._get(session_id)
        with session.lock:
            if session.retired:
                raise StreamError(f"unknown session {session_id!r}")
            return self._retire_locked(session, CLOSED)

    def quarantine(self, session_id: str) -> RunRecord:
        """Forcibly retire a session whose input stream proved
        poisonous (repeated feed failures).  Unlike :meth:`close`, the
        terminal status is always ``"quarantined"`` -- even for a
        session already sitting in overflow -- because the reason it
        left the table is the poison, not the frontier bound."""
        with self._lock:
            session = self._get(session_id)
        with session.lock:
            if session.retired:
                raise StreamError(f"unknown session {session_id!r}")
            # _retire_locked preserves a non-ACTIVE status; quarantine
            # must win over overflow, so force the terminal state here
            session.status = ACTIVE
            return self._retire_locked(session, QUARANTINED)

    def evict_idle(
        self,
        now: Optional[float] = None,
        spill: Optional[Callable[[dict], None]] = None,
    ) -> Tuple[str, ...]:
        """Retire sessions idle for longer than ``idle_timeout_s``.

        When *spill* is given, each evicted session's durable state
        (the :meth:`export_session` dict) is handed to it under the
        session lock *before* the session is retired -- the store's
        eviction path persists the state instead of losing it.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            candidates = [
                s
                for s in self._sessions.values()
                if now - s.last_active > self.limits.idle_timeout_s
            ]
        evicted: List[str] = []
        for session in candidates:
            with session.lock:
                # re-check under the session lock: a feed racing the
                # sweep may have refreshed last_active (or a close may
                # have retired the session already)
                if session.retired:
                    continue
                if now - session.last_active <= self.limits.idle_timeout_s:
                    continue
                if spill is not None:
                    spill(self._export_locked(session))
                self._retire_locked(session, EVICTED)
                evicted.append(session.session_id)
        return tuple(evicted)

    # ------------------------------------------------------------------
    def _get(self, session_id: str) -> StreamSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise StreamError(f"unknown session {session_id!r}")
        return session

    def _outcome(self, session: StreamSession, consumed: int) -> FeedOutcome:
        return FeedOutcome(
            session_id=session.session_id,
            consumed=consumed,
            status=session.status,
            observed_length=session.localizer.observed_length,
            frontier_size=session.localizer.frontier_size,
        )

    def _retire_locked(
        self, session: StreamSession, status: str
    ) -> RunRecord:
        """Retire *session* (caller holds ``session.lock``)."""
        result = session.localizer.snapshot()
        final = status if session.status == ACTIVE else session.status
        record = RunRecord(
            name=f"stream:{session.session_id}",
            jobs=1,
            tasks_dispatched=session.feeds,
            tasks_completed=session.feeds,
            tasks_failed=0,
            wall_time_s=self._clock() - session.opened_at,
            extra={
                "mode": session.mode,
                "status": final,
                "records": session.records,
                "observed_length": session.localizer.observed_length,
                "peak_frontier": session.localizer.peak_frontier,
                "consistent_paths": result.consistent_paths,
                "total_paths": result.total_paths,
                "fraction": result.fraction,
            },
        )
        session.status = final
        session.retired = True
        with self._lock:
            self._sessions.pop(session.session_id, None)
            self._retired[final] = self._retired.get(final, 0) + 1
        record_run(record)
        return record
