"""Incremental trace-file ingestion.

Post-silicon trace files arrive over time: a monitor appends lines
while the analysis side reads whatever bytes happen to be flushed.
:class:`IncrementalTraceParser` consumes that text in **arbitrary
chunks** -- a chunk may end mid-line, mid-header, even mid-codepoint
of a multi-byte write -- and emits :class:`~repro.sim.engine.
TraceRecord` objects as soon as their line completes.

Unlike the batch reader (:func:`repro.sim.tracefile.read_trace_file`),
which raises on the first malformed line, the incremental parser keeps
going and records a :class:`ParseDiagnostic` per rejected line: a live
debug session should survive a torn write or a monitor glitch and keep
tightening its localization with the records that did parse.  Both
sides share the same line grammar (:func:`~repro.sim.tracefile.
parse_header` / :func:`~repro.sim.tracefile.parse_record_line`), so on
clean input the chunked parse is byte-identical to the batch parse by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.core.message import Message
from repro.errors import SimulationError
from repro.sim.engine import TraceRecord
from repro.sim.tracefile import parse_header, parse_record_line


@dataclass(frozen=True)
class ParseDiagnostic:
    """One rejected input line (the stream kept going past it).

    Attributes
    ----------
    lineno:
        1-based line number within the stream.
    line:
        The offending line text (newline stripped).
    reason:
        Why it was rejected, e.g. ``"bad trace line: ..."`` or
        ``"unknown message 'xyz'"``.
    """

    lineno: int
    line: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"line {self.lineno}: {self.reason}"


class IncrementalTraceParser:
    """Parses trace-file text arriving in arbitrary chunks.

    Parameters
    ----------
    catalog:
        Message definitions by name (as for the batch reader).

    Notes
    -----
    The first complete line must be the ``# repro-trace v1`` header;
    a malformed header becomes a diagnostic (not an exception) and
    parsing continues with ``scenario``/``seed`` left at their
    defaults.  Blank lines and non-header comments are skipped, exactly
    as in the batch reader.
    """

    def __init__(self, catalog: Mapping[str, Message]) -> None:
        self._catalog = catalog
        self._buffer = ""
        self._lineno = 0
        self._header_done = False
        self._closed = False
        self._diagnostics: List[ParseDiagnostic] = []
        self._records_emitted = 0
        self.scenario: str = ""
        self.seed: int = 0

    # ------------------------------------------------------------------
    @property
    def diagnostics(self) -> Tuple[ParseDiagnostic, ...]:
        """Every rejected line so far, in input order."""
        return tuple(self._diagnostics)

    @property
    def records_emitted(self) -> int:
        return self._records_emitted

    @property
    def lines_seen(self) -> int:
        """Complete lines consumed so far."""
        return self._lineno

    @property
    def header_seen(self) -> bool:
        """Whether a well-formed header line has been parsed."""
        return self._header_done and not any(
            d.lineno == 1 for d in self._diagnostics
        )

    # ------------------------------------------------------------------
    def feed(self, chunk: str) -> Tuple[TraceRecord, ...]:
        """Consume *chunk*, returning records whose lines completed.

        A trailing partial line is buffered until a later chunk (or
        :meth:`close`) completes it.
        """
        if self._closed:
            raise SimulationError("parser is closed; no further chunks")
        self._buffer += chunk
        emitted: List[TraceRecord] = []
        while True:
            line, separator, rest = self._buffer.partition("\n")
            if not separator:
                break
            self._buffer = rest
            record = self._consume_line(line)
            if record is not None:
                emitted.append(record)
        self._records_emitted += len(emitted)
        return tuple(emitted)

    def feed_records(
        self, records: Iterable[TraceRecord]
    ) -> Tuple[TraceRecord, ...]:
        """Pass through already-parsed records (a source that skipped
        the text round, e.g. an in-process simulator), keeping the
        emitted-count bookkeeping consistent."""
        if self._closed:
            raise SimulationError("parser is closed; no further chunks")
        materialized = tuple(records)
        self._records_emitted += len(materialized)
        return materialized

    def close(self) -> Tuple[TraceRecord, ...]:
        """Flush a trailing unterminated line and seal the parser."""
        if self._closed:
            return ()
        self._closed = True
        if not self._buffer:
            return ()
        line, self._buffer = self._buffer, ""
        record = self._consume_line(line)
        if record is None:
            return ()
        self._records_emitted += 1
        return (record,)

    # ------------------------------------------------------------------
    # durable-state hooks (used by repro.store snapshots)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Parser position + diagnostics as a JSON-able dict (the
        buffered partial line travels verbatim)."""
        return {
            "buffer": self._buffer,
            "lineno": self._lineno,
            "header_done": self._header_done,
            "closed": self._closed,
            "diagnostics": [
                [d.lineno, d.line, d.reason] for d in self._diagnostics
            ],
            "records_emitted": self._records_emitted,
            "scenario": self.scenario,
            "seed": self.seed,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite parser state with an :meth:`export_state` dict."""
        self._buffer = state["buffer"]
        self._lineno = int(state["lineno"])
        self._header_done = bool(state["header_done"])
        self._closed = bool(state["closed"])
        self._diagnostics = [
            ParseDiagnostic(int(lineno), line, reason)
            for lineno, line, reason in state["diagnostics"]
        ]
        self._records_emitted = int(state["records_emitted"])
        self.scenario = state["scenario"]
        self.seed = int(state["seed"])

    # ------------------------------------------------------------------
    def _consume_line(self, line: str) -> Optional[TraceRecord]:
        self._lineno += 1
        line = line.rstrip("\r")
        if not self._header_done:
            self._header_done = True
            header = parse_header(line)
            if header is None:
                self._diagnostics.append(
                    ParseDiagnostic(
                        self._lineno, line, f"bad trace file header: {line!r}"
                    )
                )
            else:
                self.scenario, self.seed = header
            return None
        if not line or line.startswith("#"):
            return None
        try:
            return parse_record_line(line, self._catalog)
        except SimulationError as exc:
            self._diagnostics.append(
                ParseDiagnostic(self._lineno, line, str(exc))
            )
            return None


class CompressedTraceIngester:
    """Ingests a framed compressed bitstream into the streaming layer.

    The binary sibling of :class:`IncrementalTraceParser`: byte chunks
    of a :mod:`repro.compress` bitstream (e.g. read back from a
    :class:`~repro.sim.tracebuffer.CompressedTraceBuffer`) are decoded
    incrementally, and every record whose frame completed is forwarded
    through an :class:`IncrementalTraceParser` via ``feed_records`` --
    so sessions, localizers, and telemetry see the exact same record
    stream and bookkeeping whether the transport was text or bits.

    Parameters
    ----------
    catalog:
        Message definitions by name.
    parser:
        The downstream text parser to feed; a fresh one is created when
        omitted.
    """

    def __init__(
        self,
        catalog: Mapping[str, Message],
        parser: Optional[IncrementalTraceParser] = None,
    ) -> None:
        # deferred so plain text streaming never imports the codec
        from repro.compress.decoder import IncrementalFrameDecoder

        self._decoder = IncrementalFrameDecoder(catalog)
        self.parser = parser or IncrementalTraceParser(catalog)

    # ------------------------------------------------------------------
    @property
    def scenario(self) -> str:
        return self._decoder.scenario

    @property
    def seed(self) -> int:
        return self._decoder.seed

    @property
    def header_seen(self) -> bool:
        return self._decoder.header_seen

    @property
    def records_emitted(self) -> int:
        return self._decoder.records_emitted

    @property
    def diagnostics(self) -> Tuple[object, ...]:
        """Decode diagnostics (:class:`repro.compress.decoder.
        DecodeDiagnostic`), in input order."""
        return self._decoder.diagnostics

    # ------------------------------------------------------------------
    def feed(self, chunk: bytes) -> Tuple[TraceRecord, ...]:
        """Consume *chunk*, forwarding records of completed frames."""
        records = self._decoder.feed(chunk)
        self._sync_provenance()
        return self.parser.feed_records(records)

    def close(self) -> Tuple[TraceRecord, ...]:
        """Flush the decoder and forward any trailing records."""
        records = self._decoder.close()
        self._sync_provenance()
        if not records:
            return ()
        return self.parser.feed_records(records)

    def _sync_provenance(self) -> None:
        if self._decoder.header_seen:
            self.parser.scenario = self._decoder.scenario
            self.parser.seed = self._decoder.seed

    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Decoder + downstream parser state as one JSON-able dict."""
        return {
            "decoder": self._decoder.export_state(),
            "parser": self.parser.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite ingester state with an :meth:`export_state` dict."""
        self._decoder.restore_state(state["decoder"])
        self.parser.restore_state(state["parser"])
