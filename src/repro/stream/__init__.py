"""Streaming trace analysis: incremental ingestion and online
localization (the service layer over Section 5.2).

- :mod:`repro.stream.ingest` -- chunk-tolerant trace-file parsing with
  structured diagnostics,
- :mod:`repro.stream.incremental` -- the localization DP carried
  across captures,
- :mod:`repro.stream.session` -- per-validator sessions with limits,
  overflow status, idle eviction, and telemetry,
- :mod:`repro.stream.service` -- a thread-pooled front end plus the
  synthetic load test behind ``repro serve-demo``.
"""

from repro.stream.incremental import IncrementalLocalizer
from repro.stream.ingest import (
    CompressedTraceIngester,
    IncrementalTraceParser,
    ParseDiagnostic,
)
from repro.stream.service import (
    LoadTestReport,
    SessionOutcome,
    StreamService,
    chunked,
    run_load_test,
    synthetic_session_records,
)
from repro.stream.session import (
    FeedOutcome,
    SessionLimits,
    SessionManager,
    StreamSession,
)

__all__ = [
    "CompressedTraceIngester",
    "IncrementalLocalizer",
    "IncrementalTraceParser",
    "ParseDiagnostic",
    "SessionLimits",
    "SessionManager",
    "StreamSession",
    "FeedOutcome",
    "StreamService",
    "SessionOutcome",
    "LoadTestReport",
    "chunked",
    "run_load_test",
    "synthetic_session_records",
]
