"""Online path localization: the batch DP, carried across captures.

``selection.localization`` answers "how many interleaved-flow paths
are consistent with this observation?" for one complete observation.
During live debug the observation *grows*: every trace-buffer readout
appends a few records, and re-running the full DP per readout costs
O(states x observation) each time.  :class:`IncrementalLocalizer`
instead carries the DP state between :meth:`~IncrementalLocalizer.
feed` calls:

* **prefix/exact modes** keep the forward
  :class:`~repro.selection.localization.DPFrontier` -- weights over
  ``(interned state ID, matched length)``; state IDs are the dense
  integers :mod:`repro.core.interleave` assigns at construction -- so
  consuming one new record costs O(frontier x out-degree), independent
  of how much has already been observed.  The frontier only ever *shrinks or stays bounded*
  (it lives inside the product's antichain of states reachable at one
  matched length), which is what makes thousands of concurrent
  sessions affordable.  :meth:`~IncrementalLocalizer.feed` hands the
  whole chunk to :meth:`~repro.selection.localization.PathLocalizer.
  advance_many`, so on the dense engine a FEED chunk is one batched
  kernel invocation instead of per-record dict walks.
* **window mode** grows the observed window's KMP failure table online
  (O(1) amortized per record, :func:`~repro.selection.localization.
  kmp_extend`); the composed product/automaton count is evaluated
  lazily at :meth:`~IncrementalLocalizer.snapshot` and cached per
  observation length, so feeding is cheap and repeated snapshots are
  free.

At every point ``snapshot()`` equals the batch
:meth:`~repro.selection.localization.PathLocalizer.localize` on the
records fed so far -- chunking is invisible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.core.interleave import InterleavedFlow
from repro.core.message import IndexedMessage, Message
from repro.errors import FrontierOverflowError, SelectionError
from repro.selection.localization import (
    DPFrontier,
    LocalizationResult,
    MODES,
    PathLocalizer,
    kmp_extend,
)
from repro.sim.engine import TraceRecord

#: What ``feed`` accepts: raw simulator records or bare (indexed)
#: messages -- the same shapes the batch API takes.
Observable = Union[TraceRecord, IndexedMessage, Message]


def _symbol(item: Observable) -> object:
    """The observation symbol carried by *item*."""
    if isinstance(item, TraceRecord):
        return item.message
    return item


class IncrementalLocalizer:
    """Carries the localization DP across incremental captures.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow.
    traced:
        The traced message set (as for the batch localizer).
    mode:
        ``"prefix"`` (default), ``"exact"``, or ``"window"`` -- fixed
        for the lifetime of the localizer (the carried DP state is
        mode-specific).
    max_frontier:
        Optional bound on carried DP state: live frontier states for
        prefix/exact, observed-window length for window mode.  When
        exceeded, :meth:`feed` raises :class:`~repro.errors.
        FrontierOverflowError` and the localizer freezes at its last
        consistent state (``overflowed`` turns true; further feeding
        keeps raising).
    localizer:
        Share an existing :class:`PathLocalizer` (its adjacency split,
        topological index, and path-count tables) across many
        incremental sessions over the same scenario; omitted, a
        private one is built.
    """

    def __init__(
        self,
        interleaved: Optional[InterleavedFlow] = None,
        traced: Optional[Iterable[Message]] = None,
        mode: str = "prefix",
        max_frontier: Optional[int] = None,
        localizer: Optional[PathLocalizer] = None,
    ) -> None:
        if mode not in MODES:
            raise SelectionError(
                f"unknown localization mode {mode!r}; "
                "choose 'prefix', 'exact', or 'window'"
            )
        if localizer is None:
            if interleaved is None or traced is None:
                raise SelectionError(
                    "IncrementalLocalizer needs (interleaved, traced) "
                    "or an existing localizer"
                )
            localizer = PathLocalizer(interleaved, traced)
        if max_frontier is not None and max_frontier < 1:
            raise SelectionError(
                f"max_frontier must be >= 1, got {max_frontier}"
            )
        self.mode = mode
        self.max_frontier = max_frontier
        self._localizer = localizer
        self._overflowed = False
        self._observed_length = 0
        # prefix/exact state: the forward frontier
        self._frontier: Optional[DPFrontier] = None
        if mode != "window":
            self._frontier = localizer.initial_frontier()
        # window state: the growing pattern + its online failure table
        self._pattern: List[object] = []
        self._failure: List[int] = []
        self._window_cache: Optional[LocalizationResult] = None
        self._peak_frontier = self.frontier_size

    # ------------------------------------------------------------------
    @property
    def localizer(self) -> PathLocalizer:
        """The shared batch localizer (DP tables, visibility)."""
        return self._localizer

    @property
    def observed_length(self) -> int:
        """Symbols consumed so far."""
        return self._observed_length

    @property
    def overflowed(self) -> bool:
        """Whether the frontier bound was hit (state frozen since)."""
        return self._overflowed

    @property
    def frontier_size(self) -> int:
        """Carried DP state size: live product states (prefix/exact)
        or window length (window mode)."""
        if self.mode == "window":
            return len(self._pattern)
        assert self._frontier is not None
        return self._frontier.size

    @property
    def peak_frontier(self) -> int:
        """Largest frontier seen over the localizer's lifetime."""
        return self._peak_frontier

    @property
    def is_dead(self) -> bool:
        """No path can be consistent any more (count pinned at 0)."""
        if self.mode == "window":
            return False  # a window may still match later paths' runs
        assert self._frontier is not None
        return self._frontier.is_dead

    def is_visible(self, item: Observable) -> bool:
        """Whether the trace buffer would have captured *item*."""
        return self._localizer.is_visible(_symbol(item))

    # ------------------------------------------------------------------
    def feed(self, records: Iterable[Observable]) -> int:
        """Consume *records* (oldest first); returns symbols consumed.

        Raises
        ------
        SelectionError
            On an untraced observation (mirror of the batch guard) or,
            in window mode, an un-indexed one.
        FrontierOverflowError
            When ``max_frontier`` is exceeded; the localizer freezes
            at the state *before* the overflowing record.
        """
        if self._overflowed:
            raise FrontierOverflowError(
                f"localizer frontier overflowed at {self.max_frontier}; "
                "no further records accepted"
            )
        if self.mode == "window":
            consumed = 0
            for item in records:
                self._feed_one(_symbol(item))
                consumed += 1
            return consumed
        # prefix/exact: one batched kernel invocation for the whole
        # chunk.  On partial failure (untraced symbol, overflow) the
        # exception carries the valid prefix's progress, which keeps
        # the freeze-at-last-consistent-state semantics of the
        # per-record loop.
        assert self._frontier is not None
        symbols = [_symbol(item) for item in records]
        try:
            outcome = self._localizer.advance_many(
                self._frontier, symbols, max_frontier=self.max_frontier
            )
        except FrontierOverflowError as exc:
            self._commit(exc.frontier, exc.consumed, exc.peak_size)
            self._overflowed = True
            raise
        except SelectionError as exc:
            self._commit(exc.frontier, exc.consumed, exc.peak_size)
            raise
        self._commit(outcome.frontier, outcome.consumed, outcome.peak_size)
        return outcome.consumed

    def _commit(
        self, frontier: DPFrontier, consumed: int, peak_size: int
    ) -> None:
        """Fold a batch outcome (possibly partial) into carried state."""
        self._frontier = frontier
        self._observed_length += consumed
        self._peak_frontier = max(self._peak_frontier, peak_size)

    def observe_records(self, records: Iterable[Observable]) -> int:
        """Feed only the records the trace buffer would have captured.

        Convenience for raw simulator/ingest streams that still carry
        untraced messages; returns how many records were consumed.
        """
        return self.feed(r for r in records if self.is_visible(r))

    def snapshot(self) -> LocalizationResult:
        """The batch-identical localization of everything fed so far."""
        if self.mode == "prefix":
            assert self._frontier is not None
            count = self._localizer.prefix_count(self._frontier)
        elif self.mode == "exact":
            assert self._frontier is not None
            count = self._localizer.exact_count(self._frontier)
        else:
            if self._window_cache is None:
                self._window_cache = LocalizationResult(
                    consistent_paths=self._localizer.window_count(
                        tuple(self._pattern), self._failure
                    ),
                    total_paths=self._localizer.total_paths,
                )
            return self._window_cache
        return LocalizationResult(
            consistent_paths=count,
            total_paths=self._localizer.total_paths,
        )

    # ------------------------------------------------------------------
    # durable-state hooks (used by repro.store snapshots)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """The carried DP state as a JSON-able dict.

        Everything is expressed in interned integer IDs (state IDs for
        the frontier maps, message IDs for the window pattern), so the
        dict survives a round trip through JSON and a process restart:
        :meth:`restore_state` on a fresh localizer over the *same*
        scenario and traced set (see :meth:`PathLocalizer.fingerprint`)
        rebuilds bit-identical state.  Frontier weights are arbitrary
        -precision ints -- JSON carries them exactly.
        """
        frontier = None
        if self._frontier is not None:
            frontier = {
                "matched": sorted(self._frontier.matched.items()),
                "closed": sorted(self._frontier.closed.items()),
                "length": self._frontier.length,
            }
        interleaved = self._localizer.interleaved
        return {
            "mode": self.mode,
            "max_frontier": self.max_frontier,
            "overflowed": self._overflowed,
            "observed_length": self._observed_length,
            "peak_frontier": self._peak_frontier,
            "frontier": frontier,
            "pattern": [
                interleaved.message_id(symbol) for symbol in self._pattern
            ],
            "failure": list(self._failure),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite carried state with an :meth:`export_state` dict.

        The localizer must have been constructed with the same ``mode``
        (the carried representation is mode-specific); the caller is
        responsible for checking the scenario fingerprint first.
        """
        if state.get("mode") != self.mode:
            raise SelectionError(
                f"cannot restore {state.get('mode')!r} state into a "
                f"{self.mode!r} localizer"
            )
        self.max_frontier = state.get("max_frontier")
        self._overflowed = bool(state["overflowed"])
        self._observed_length = int(state["observed_length"])
        self._peak_frontier = int(state["peak_frontier"])
        frontier = state.get("frontier")
        if frontier is None:
            self._frontier = None
        else:
            self._frontier = DPFrontier(
                matched={int(k): int(v) for k, v in frontier["matched"]},
                closed={int(k): int(v) for k, v in frontier["closed"]},
                length=int(frontier["length"]),
            )
        interleaved = self._localizer.interleaved
        self._pattern = [
            interleaved.message_at(int(mid)) for mid in state["pattern"]
        ]
        self._failure = [int(f) for f in state["failure"]]
        self._window_cache = None

    # ------------------------------------------------------------------
    def _feed_one(self, symbol: object) -> None:
        """Window-mode per-record step (the KMP extension is O(1)
        amortized, so there is nothing to batch)."""
        if not isinstance(symbol, IndexedMessage):
            raise SelectionError(
                "window-mode localization needs a fully indexed "
                f"observation; got {symbol!r}"
            )
        if not self._localizer.is_visible(symbol):
            raise SelectionError(
                f"observed message {symbol!r} is not in the traced set"
            )
        if (
            self.max_frontier is not None
            and len(self._pattern) + 1 > self.max_frontier
        ):
            self._overflowed = True
            raise FrontierOverflowError(
                f"window length would exceed max_frontier="
                f"{self.max_frontier}"
            )
        kmp_extend(self._pattern, self._failure, symbol)
        self._window_cache = None
        self._observed_length += 1
        self._peak_frontier = max(self._peak_frontier, self.frontier_size)
