"""Transport-agnostic session driving: one worker loop for every front
end.

A debug workload -- open a session, feed its chunks in order, snapshot,
close -- is the same whether the session lives in this process
(:class:`~repro.stream.session.SessionManager`) or behind the wire
protocol of :mod:`repro.server`.  This module owns that loop exactly
once:

* :class:`SessionTransport` -- the four-method session surface a driver
  needs (``open``/``feed``/``snapshot``/``close``),
* :class:`InProcessTransport` -- the adapter over a
  :class:`~repro.stream.session.SessionManager`,
* :func:`drive_session` -- the worker loop, producing a
  :class:`SessionOutcome` with per-feed latencies,
* :func:`build_report` -- aggregation into a :class:`LoadTestReport`
  (records/sec plus latency percentiles).

``repro.stream.service.run_load_test`` (in-process threads) and
``repro.server.loadgen`` (networked, multi-process) are the two
consumers; both report the same shapes, so their numbers are directly
comparable -- that comparison is what ``benchmarks/server_bench.py``
gates on.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StreamError
from repro.selection.localization import LocalizationResult
from repro.stream.incremental import Observable
from repro.stream.session import SessionManager


@dataclass(frozen=True)
class SessionOutcome:
    """Everything one driven session produced."""

    session_id: str
    result: LocalizationResult
    status: str
    records: int
    feed_latencies_s: Tuple[float, ...]


@dataclass(frozen=True)
class LoadTestReport:
    """Aggregate numbers from one synthetic multi-session run."""

    sessions: int
    workers: int
    chunk_size: int
    mode: str
    total_records: int
    wall_s: float
    records_per_s: float
    p95_feed_latency_s: float
    max_feed_latency_s: float
    outcomes: Tuple[SessionOutcome, ...]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (per-session payloads reduced to the
        numbers dashboards plot)."""
        return {
            "sessions": self.sessions,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "mode": self.mode,
            "total_records": self.total_records,
            "wall_s": round(self.wall_s, 6),
            "records_per_s": round(self.records_per_s, 3),
            "p95_feed_latency_s": round(self.p95_feed_latency_s, 6),
            "max_feed_latency_s": round(self.max_feed_latency_s, 6),
            "statuses": {
                status: sum(1 for o in self.outcomes if o.status == status)
                for status in sorted({o.status for o in self.outcomes})
            },
            "fractions": [
                round(o.result.fraction, 8) for o in self.outcomes
            ],
        }


class SessionTransport:
    """The session surface a workload driver needs.

    Implementations adapt a concrete backend -- an in-process
    :class:`~repro.stream.session.SessionManager`, a network client --
    to the four lifecycle calls below.  ``feed`` returns how many
    records the localizer consumed from the chunk (the chunk's *type*
    is transport-defined: record sequences in process, raw bytes on the
    wire).
    """

    def open(
        self, session_id: Optional[str] = None, mode: Optional[str] = None
    ) -> str:
        raise NotImplementedError

    def feed(self, session_id: str, chunk: object) -> int:
        raise NotImplementedError

    def snapshot(self, session_id: str) -> LocalizationResult:
        raise NotImplementedError

    def close(self, session_id: str) -> str:
        """Close the session; returns its final status string."""
        raise NotImplementedError


class InProcessTransport(SessionTransport):
    """Drives sessions of a local :class:`SessionManager`."""

    def __init__(
        self, manager: SessionManager, drop_invisible: bool = False
    ) -> None:
        self.manager = manager
        self.drop_invisible = drop_invisible

    def open(
        self, session_id: Optional[str] = None, mode: Optional[str] = None
    ) -> str:
        return self.manager.open(session_id, mode=mode)

    def feed(self, session_id: str, chunk: object) -> int:
        records: Sequence[Observable] = chunk  # type: ignore[assignment]
        return self.manager.feed(
            session_id, records, drop_invisible=self.drop_invisible
        ).consumed

    def snapshot(self, session_id: str) -> LocalizationResult:
        return self.manager.snapshot(session_id)

    def close(self, session_id: str) -> str:
        return str(self.manager.close(session_id).extra["status"])


def drive_session(
    transport: SessionTransport,
    chunks: Iterable[object],
    session_id: Optional[str] = None,
    mode: Optional[str] = None,
) -> SessionOutcome:
    """Open, feed every chunk in order, snapshot, close (synchronous).

    The one worker loop shared by every front end; per-feed wall time
    is measured around each ``transport.feed`` call, so in-process and
    networked latencies are defined identically.
    """
    sid = transport.open(session_id, mode=mode)
    latencies: List[float] = []
    records = 0
    try:
        for chunk in chunks:
            started = time.perf_counter()
            records += transport.feed(sid, chunk)
            latencies.append(time.perf_counter() - started)
        result = transport.snapshot(sid)
    finally:
        status = transport.close(sid)
    return SessionOutcome(
        session_id=sid,
        result=result,
        status=status,
        records=records,
        feed_latencies_s=tuple(latencies),
    )


def build_report(
    outcomes: Sequence[SessionOutcome],
    workers: int,
    chunk_size: int,
    mode: str,
    wall_s: float,
) -> LoadTestReport:
    """Aggregate per-session outcomes into a :class:`LoadTestReport`."""
    latencies = sorted(
        latency for o in outcomes for latency in o.feed_latencies_s
    )
    total_records = sum(o.records for o in outcomes)
    return LoadTestReport(
        sessions=len(outcomes),
        workers=workers,
        chunk_size=chunk_size,
        mode=mode,
        total_records=total_records,
        wall_s=wall_s,
        records_per_s=total_records / wall_s if wall_s > 0 else 0.0,
        p95_feed_latency_s=percentile(latencies, 0.95),
        max_feed_latency_s=latencies[-1] if latencies else 0.0,
        outcomes=tuple(outcomes),
    )


# ----------------------------------------------------------------------
def chunked(
    records: Sequence[Observable], size: int
) -> List[Tuple[Observable, ...]]:
    """Split *records* into feed-sized chunks (last one may be short)."""
    if size < 1:
        raise StreamError(f"chunk size must be >= 1, got {size}")
    return [
        tuple(records[i : i + size]) for i in range(0, len(records), size)
    ]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]
