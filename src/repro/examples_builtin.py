"""Built-in example flows from the paper's running example.

The toy cache-coherence flow of Figure 1a is the ground-truth fixture
for the whole library: its two-instance interleaving has 15 states and
18 transitions, the information gain of ``{ReqE, GntE}`` is ~1.073, and
the flow specification coverage of that combination is 11/15 = 0.7333.
"""

from __future__ import annotations

from repro.core.flow import Flow, Transition
from repro.core.message import Message


def toy_cache_coherence_flow() -> Flow:
    """The exclusive-line-access flow of Figure 1a.

    States ``n`` (Init), ``w`` (Wait), ``c`` (GntW, atomic), ``d``
    (Done); messages ``ReqE``, ``GntE``, ``Ack``, each 1 bit wide,
    exchanged between IP ``1`` and the directory ``Dir``.
    """
    req = Message("ReqE", 1, source="1", destination="Dir")
    gnt = Message("GntE", 1, source="Dir", destination="1")
    ack = Message("Ack", 1, source="1", destination="Dir")
    return Flow(
        name="CacheCoherence",
        states=["n", "w", "c", "d"],
        initial=["n"],
        stop=["d"],
        transitions=[
            Transition("n", req, "w"),
            Transition("w", gnt, "c"),
            Transition("c", ack, "d"),
        ],
        atomic=["c"],
    )
