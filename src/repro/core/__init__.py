"""Core formalism of the paper: messages, flows, indexing, interleaving.

This package implements Definitions 1-7 of Pal et al. (DAC 2018):

* :mod:`repro.core.message` -- messages ``<C, w>``, sub-message groups,
  indexed messages and message combinations (Defs. 3 and 6).
* :mod:`repro.core.flow` -- the flow DAG ``<S, S0, Sp, E, delta, Atom>``
  (Def. 1) and executions/traces (Def. 2).
* :mod:`repro.core.indexing` -- indexed flows and legal indexing
  (Defs. 3-4).
* :mod:`repro.core.interleave` -- the interleaving product ``F ||| G``
  with atomic-state mutual exclusion (Def. 5).
* :mod:`repro.core.execution` -- path counting and enumeration over
  flows and interleaved flows.
* :mod:`repro.core.coverage` -- visible states and flow specification
  coverage (Def. 7).
* :mod:`repro.core.information` -- the mutual-information-gain metric
  of Section 3.2.
"""

from repro.core.message import (
    Message,
    IndexedMessage,
    MessageCombination,
)
from repro.core.flow import Flow, Transition, Execution
from repro.core.indexing import IndexedFlow, IndexedState, legally_indexed
from repro.core.interleave import InterleavedFlow, interleave
from repro.core.coverage import flow_specification_coverage, visible_states
from repro.core.information import (
    InformationModel,
    mutual_information_gain,
)

__all__ = [
    "Message",
    "IndexedMessage",
    "MessageCombination",
    "Flow",
    "Transition",
    "Execution",
    "IndexedFlow",
    "IndexedState",
    "legally_indexed",
    "InterleavedFlow",
    "interleave",
    "flow_specification_coverage",
    "visible_states",
    "InformationModel",
    "mutual_information_gain",
]
