"""The interleaving product of legally indexed flows (Definition 5).

``interleave(instances)`` constructs the n-ary generalization of the
paper's binary operator ``F ||| G``:

* product states are tuples of component :class:`IndexedState`\\ s,
* a component may take one of its transitions only while **every other
  component is outside its atomic set** (rules i/ii of Definition 5),
* consequently no reachable product state ever has two components in
  their atomic states simultaneously -- e.g. state ``(c1, c2)`` of the
  running example is unreachable.

Only the reachable part of the product is materialized (sparse, BFS
from the initial product states), which is what keeps the construction
tractable for multi-flow usage scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.flow import Execution, Flow
from repro.core.indexing import (
    IndexedFlow,
    IndexedState,
    check_legally_indexed,
    index_flows,
)
from repro.core.message import IndexedMessage, Message, MessageCombination
from repro.errors import InterleavingError

ProductState = Tuple[IndexedState, ...]


@dataclass(frozen=True, order=True)
class InterleavedTransition:
    """One edge of the interleaved flow: ``src --<i:msg>--> dst``."""

    source: ProductState
    message: IndexedMessage
    target: ProductState

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        src = "(" + ",".join(s.name for s in self.source) + ")"
        dst = "(" + ",".join(s.name for s in self.target) + ")"
        return f"{src} --{self.message.name}--> {dst}"


class InterleavedFlow:
    """Reachable interleaving product ``U = F1 ||| F2 ||| ... ||| Fn``.

    Instances are built with :func:`interleave`; the constructor is
    internal.  The object exposes everything the selection machinery
    needs:

    * ``states`` / ``initial`` / ``stop`` / ``transitions`` -- the
      product automaton,
    * ``outgoing(state)`` -- adjacency,
    * ``message_occurrences`` -- how often each indexed message labels
      an edge (the marginal ``p(y)`` numerator of Section 3.2),
    * ``count_paths()`` -- number of executions (used as the
      denominator of path localization, Section 5.2),
    * ``executions()`` / ``random_execution()`` -- path enumeration and
      sampling.
    """

    def __init__(
        self,
        components: Sequence[IndexedFlow],
        states: FrozenSet[ProductState],
        initial: FrozenSet[ProductState],
        stop: FrozenSet[ProductState],
        transitions: Tuple[InterleavedTransition, ...],
    ) -> None:
        self.components = tuple(components)
        self.states = states
        self.initial = initial
        self.stop = stop
        self.transitions = transitions
        self._outgoing: Dict[ProductState, List[InterleavedTransition]] = {}
        for t in transitions:
            self._outgoing.setdefault(t.source, []).append(t)
        for adjacency in self._outgoing.values():
            adjacency.sort()
        self._paths_to_stop: Optional[Dict[ProductState, int]] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return " ||| ".join(c.name for c in self.components)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    @property
    def messages(self) -> MessageCombination:
        """The (un-indexed) message set ``E = union of component E_i``."""
        return MessageCombination(
            m for c in self.components for m in c.flow.messages
        )

    @property
    def indexed_messages(self) -> Tuple[IndexedMessage, ...]:
        """Every indexed message labelling at least one edge."""
        return tuple(sorted({t.message for t in self.transitions}))

    def indices_of(self, message: Message) -> Tuple[int, ...]:
        """Instance indices under which *message* occurs in the product."""
        return tuple(
            sorted(
                {
                    t.message.index
                    for t in self.transitions
                    if t.message.message == message
                }
            )
        )

    def outgoing(self, state: ProductState) -> Tuple[InterleavedTransition, ...]:
        return tuple(self._outgoing.get(state, ()))

    @property
    def message_occurrences(self) -> Dict[IndexedMessage, int]:
        """Edge count per indexed message over the whole product."""
        counts: Dict[IndexedMessage, int] = {}
        for t in self.transitions:
            counts[t.message] = counts.get(t.message, 0) + 1
        return counts

    def destinations(self, message: IndexedMessage) -> List[ProductState]:
        """Target states of every edge labelled *message* (with
        multiplicity)."""
        return [t.target for t in self.transitions if t.message == message]

    # ------------------------------------------------------------------
    # paths / executions
    # ------------------------------------------------------------------
    def topological_order(self) -> List[ProductState]:
        """Reachable product states in topological order."""
        indegree: Dict[ProductState, int] = {s: 0 for s in self.states}
        for t in self.transitions:
            indegree[t.target] += 1
        ready = [s for s, d in indegree.items() if d == 0]
        order: List[ProductState] = []
        while ready:
            state = ready.pop()
            order.append(state)
            for t in self.outgoing(state):
                indegree[t.target] -= 1
                if indegree[t.target] == 0:
                    ready.append(t.target)
        if len(order) != len(self.states):
            raise InterleavingError(
                "interleaved flow is not a DAG"
            )  # pragma: no cover - components are validated DAGs
        return order

    def paths_to_stop(self) -> Dict[ProductState, int]:
        """Number of paths from each state to any stop state (memoised)."""
        if self._paths_to_stop is None:
            counts: Dict[ProductState, int] = {}
            for state in reversed(self.topological_order()):
                total = 1 if state in self.stop else 0
                for t in self.outgoing(state):
                    total += counts[t.target]
                counts[state] = total
            self._paths_to_stop = counts
        return self._paths_to_stop

    def count_paths(self) -> int:
        """Total number of executions of the interleaved flow."""
        counts = self.paths_to_stop()
        return sum(counts.get(s, 0) for s in self.initial)

    def executions(self) -> Iterator[Execution]:
        """Lazily enumerate executions (may be astronomically many --
        callers should bound their consumption)."""
        for start in sorted(self.initial):
            stack: List[
                Tuple[ProductState, Tuple[ProductState, ...], Tuple[IndexedMessage, ...]]
            ] = [(start, (start,), ())]
            while stack:
                state, path_states, path_msgs = stack.pop()
                if state in self.stop:
                    yield Execution(path_states, path_msgs)
                for t in reversed(self.outgoing(state)):
                    stack.append(
                        (t.target, path_states + (t.target,), path_msgs + (t.message,))
                    )

    def random_execution(self, rng: random.Random) -> Execution:
        """Sample one execution uniformly at random among all executions.

        Uses the path-count DP so every complete path has equal
        probability (a plain random walk would bias towards short or
        low-branching paths).
        """
        counts = self.paths_to_stop()
        starts = sorted(self.initial)
        weights = [counts.get(s, 0) for s in starts]
        if sum(weights) == 0:
            raise InterleavingError(
                f"interleaved flow {self.name} has no execution"
            )
        state = rng.choices(starts, weights=weights)[0]
        states: List[ProductState] = [state]
        msgs: List[IndexedMessage] = []
        while True:
            options: List[Tuple[Optional[InterleavedTransition], int]] = []
            if state in self.stop:
                options.append((None, 1))
            for t in self.outgoing(state):
                options.append((t, counts[t.target]))
            choice = rng.choices(
                [o for o, _ in options], weights=[w for _, w in options]
            )[0]
            if choice is None:
                return Execution(tuple(states), tuple(msgs))
            msgs.append(choice.message)
            states.append(choice.target)
            state = choice.target

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------
    def project(self, execution: Execution, component: IndexedFlow) -> Execution:
        """Project an interleaved execution onto one component instance.

        The result is the component's own execution: its local state
        sequence with the messages carrying *component*'s index.
        """
        position = self.components.index(component)
        local_states: List[object] = [execution.states[0][position].state]
        local_msgs: List[Message] = []
        for msg, state in zip(execution.messages, execution.states[1:]):
            if isinstance(msg, IndexedMessage) and msg.index == component.index \
                    and msg.message in component.flow.messages:
                local_msgs.append(msg.message)
                local_states.append(state[position].state)
        return Execution(tuple(local_states), tuple(local_msgs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterleavedFlow({self.name!r}, |S|={self.num_states}, "
            f"|delta|={self.num_transitions})"
        )


def interleave(instances: Sequence[IndexedFlow]) -> InterleavedFlow:
    """Construct the reachable interleaving of *instances* (Definition 5).

    Parameters
    ----------
    instances:
        Pairwise legally indexed flow instances (Definition 4);
        violations raise :class:`~repro.errors.IndexingError`.

    Returns
    -------
    InterleavedFlow
        The reachable product automaton.  Atomic-state mutual exclusion
        is enforced: a component moves only while every other component
        is outside its atomic set, so no reachable state has two
        components simultaneously atomic.
    """
    instances = tuple(instances)
    if not instances:
        raise InterleavingError("cannot interleave zero flow instances")
    check_legally_indexed(instances)

    atomic_sets: List[FrozenSet[IndexedState]] = [
        frozenset(inst.atomic) for inst in instances
    ]
    initial_states: List[ProductState] = []
    for combo in _cartesian([inst.initial for inst in instances]):
        initial_states.append(tuple(combo))

    states: Set[ProductState] = set(initial_states)
    transitions: List[InterleavedTransition] = []
    frontier: List[ProductState] = list(initial_states)
    while frontier:
        current = frontier.pop()
        for position, inst in enumerate(instances):
            others_quiescent = all(
                current[j] not in atomic_sets[j]
                for j in range(len(instances))
                if j != position
            )
            if not others_quiescent:
                continue
            for message, target_local in inst.outgoing(current[position]):
                target = current[:position] + (target_local,) + current[position + 1:]
                transitions.append(InterleavedTransition(current, message, target))
                if target not in states:
                    states.add(target)
                    frontier.append(target)

    stop_states = frozenset(
        s
        for s in states
        if all(s[i] in set(inst.stop) for i, inst in enumerate(instances))
    )
    return InterleavedFlow(
        components=instances,
        states=frozenset(states),
        initial=frozenset(initial_states),
        stop=stop_states,
        transitions=tuple(sorted(transitions)),
    )


def interleave_flows(
    flows: Sequence[Flow], copies: int = 1
) -> InterleavedFlow:
    """Convenience wrapper: index *copies* instances of each flow
    (legally, via :func:`repro.core.indexing.index_flows`) and
    interleave them all."""
    if copies < 1:
        raise InterleavingError(f"copies must be >= 1, got {copies}")
    expanded: List[Flow] = []
    for flow in flows:
        expanded.extend([flow] * copies)
    return interleave(index_flows(expanded))


def _cartesian(
    sets: Sequence[Sequence[IndexedState]],
) -> Iterator[Tuple[IndexedState, ...]]:
    """Cartesian product of component state sets (no itertools import to
    keep recursion explicit and typed)."""
    if not sets:
        yield ()
        return
    for head in sets[0]:
        for rest in _cartesian(sets[1:]):
            yield (head,) + rest
