"""The interleaving product of legally indexed flows (Definition 5).

``interleave(instances)`` constructs the n-ary generalization of the
paper's binary operator ``F ||| G``:

* product states are tuples of component :class:`IndexedState`\\ s,
* a component may take one of its transitions only while **every other
  component is outside its atomic set** (rules i/ii of Definition 5),
* consequently no reachable product state ever has two components in
  their atomic states simultaneously -- e.g. state ``(c1, c2)`` of the
  running example is unreachable.

Only the reachable part of the product is materialized (sparse, BFS
from the initial product states), which is what keeps the construction
tractable for multi-flow usage scenarios.

Internally the product is *interned*: every reachable state and every
distinct indexed message receives a dense integer ID at construction
(IDs follow the states'/messages' natural sort order), and the
transition relation is stored as CSR-style integer arrays.  The public
tuple/dataclass API (``states``, ``transitions``, ``outgoing``, ...)
is preserved as thin views over those tables, while the hot consumers
-- the information model, coverage bitsets, and the localization DP --
work directly on the integer arrays.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import perf
from repro.core.flow import Execution, Flow
from repro.core.indexing import (
    IndexedFlow,
    IndexedState,
    check_legally_indexed,
    index_flows,
)
from repro.core.message import IndexedMessage, Message, MessageCombination
from repro.core.visibility import VisibilityIndex
from repro.errors import InterleavingError

ProductState = Tuple[IndexedState, ...]


@dataclass(frozen=True, order=True)
class InterleavedTransition:
    """One edge of the interleaved flow: ``src --<i:msg>--> dst``."""

    source: ProductState
    message: IndexedMessage
    target: ProductState

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        src = "(" + ",".join(s.name for s in self.source) + ")"
        dst = "(" + ",".join(s.name for s in self.target) + ")"
        return f"{src} --{self.message.name}--> {dst}"


@dataclass(frozen=True)
class _InternedProduct:
    """The integer view of a product automaton.

    ``state_table``/``message_table`` assign dense IDs in the states'
    (respectively messages') sort order, so comparisons on IDs agree
    with comparisons on the objects.  The adjacency is CSR-style: the
    edges leaving state ID ``i`` are positions
    ``adj_offsets[i]:adj_offsets[i + 1]`` of the parallel
    ``adj_messages``/``adj_targets`` arrays, sorted by
    ``(message ID, target ID)`` -- the exact order :meth:`InterleavedFlow.
    outgoing` has always presented.
    """

    state_table: Tuple[ProductState, ...]
    state_ids: Dict[ProductState, int]
    message_table: Tuple[IndexedMessage, ...]
    message_ids: Dict[IndexedMessage, int]
    adj_offsets: Tuple[int, ...]
    adj_messages: Tuple[int, ...]
    adj_targets: Tuple[int, ...]


def _intern_product(
    states: FrozenSet[ProductState],
    transitions: Sequence[InterleavedTransition],
) -> _InternedProduct:
    """Build the interned tables from object-level states/transitions.

    Used when an :class:`InterleavedFlow` is constructed directly (the
    :func:`interleave` builder assembles the tables inline, without
    re-deriving them from objects).
    """
    state_table = tuple(sorted(states))
    state_ids = {state: i for i, state in enumerate(state_table)}
    message_table = tuple(sorted({t.message for t in transitions}))
    message_ids = {m: i for i, m in enumerate(message_table)}
    edges = sorted(
        (state_ids[t.source], message_ids[t.message], state_ids[t.target])
        for t in transitions
    )
    return _finish_interning(state_table, state_ids, message_table,
                             message_ids, edges)


def _finish_interning(
    state_table: Tuple[ProductState, ...],
    state_ids: Dict[ProductState, int],
    message_table: Tuple[IndexedMessage, ...],
    message_ids: Dict[IndexedMessage, int],
    edges: List[Tuple[int, int, int]],
) -> _InternedProduct:
    """Pack ``(src, msg, tgt)`` ID triples (sorted) into CSR arrays."""
    offsets = [0] * (len(state_table) + 1)
    for src, _, _ in edges:
        offsets[src + 1] += 1
    for i in range(1, len(offsets)):
        offsets[i] += offsets[i - 1]
    return _InternedProduct(
        state_table=state_table,
        state_ids=state_ids,
        message_table=message_table,
        message_ids=message_ids,
        adj_offsets=tuple(offsets),
        adj_messages=tuple(m for _, m, _ in edges),
        adj_targets=tuple(t for _, _, t in edges),
    )


class InterleavedFlow:
    """Reachable interleaving product ``U = F1 ||| F2 ||| ... ||| Fn``.

    Instances are built with :func:`interleave`; the constructor is
    internal.  The object exposes everything the selection machinery
    needs:

    * ``states`` / ``initial`` / ``stop`` / ``transitions`` -- the
      product automaton,
    * ``outgoing(state)`` -- adjacency,
    * ``message_occurrences`` -- how often each indexed message labels
      an edge (the marginal ``p(y)`` numerator of Section 3.2),
    * ``count_paths()`` -- number of executions (used as the
      denominator of path localization, Section 5.2),
    * ``executions()`` / ``random_execution()`` -- path enumeration and
      sampling,

    plus the integer-level view the hot paths run on:

    * ``state_id`` / ``state_at`` and ``message_id`` / ``message_at``
      -- the interned tables (IDs follow sort order),
    * ``initial_ids`` / ``stop_ids`` / ``csr_adjacency()`` -- the
      product automaton over IDs,
    * ``paths_to_stop_ids()`` / ``topological_ids()`` -- the DP
      arrays, indexed by state ID,
    * ``visibility_index()`` -- per-message coverage bitsets
      (:mod:`repro.core.visibility`).
    """

    def __init__(
        self,
        components: Sequence[IndexedFlow],
        states: FrozenSet[ProductState],
        initial: FrozenSet[ProductState],
        stop: FrozenSet[ProductState],
        transitions: Tuple[InterleavedTransition, ...],
        interned: Optional[_InternedProduct] = None,
    ) -> None:
        self.components = tuple(components)
        self.states = states
        self.initial = initial
        self.stop = stop
        self.transitions = transitions
        self._interned = (
            interned
            if interned is not None
            else _intern_product(states, transitions)
        )
        self._initial_ids = tuple(
            sorted(self._interned.state_ids[s] for s in initial)
        )
        self._stop_ids = frozenset(
            self._interned.state_ids[s] for s in stop
        )
        # lazy caches over the interned tables
        self._outgoing_cache: Dict[ProductState, Tuple[InterleavedTransition, ...]] = {}
        self._paths_to_stop: Optional[Dict[ProductState, int]] = None
        self._paths_to_stop_ids: Optional[List[int]] = None
        self._topological_ids: Optional[List[int]] = None
        self._message_occurrences: Optional[Dict[IndexedMessage, int]] = None
        self._edge_targets_by_message: Optional[
            Dict[IndexedMessage, List[int]]
        ] = None
        self._visibility: Optional[VisibilityIndex] = None
        self._messages: Optional[MessageCombination] = None

    # ------------------------------------------------------------------
    # interned integer view
    # ------------------------------------------------------------------
    def state_id(self, state: ProductState) -> int:
        """Dense ID of *state* (IDs follow the states' sort order)."""
        return self._interned.state_ids[state]

    def state_at(self, state_id: int) -> ProductState:
        """The product state interned at *state_id*."""
        return self._interned.state_table[state_id]

    def message_id(self, message: IndexedMessage) -> Optional[int]:
        """Dense ID of an indexed message, or ``None`` when it labels
        no edge of the product."""
        return self._interned.message_ids.get(message)

    def message_at(self, message_id: int) -> IndexedMessage:
        """The indexed message interned at *message_id*."""
        return self._interned.message_table[message_id]

    @property
    def initial_ids(self) -> Tuple[int, ...]:
        """IDs of the initial product states, ascending."""
        return self._initial_ids

    @property
    def stop_ids(self) -> FrozenSet[int]:
        """IDs of the stop product states."""
        return self._stop_ids

    def csr_adjacency(self) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
        """The transition relation as ``(offsets, message_ids,
        target_ids)`` CSR arrays (edges of state ``i`` live at
        ``offsets[i]:offsets[i + 1]``, sorted by message then target)."""
        interned = self._interned
        return interned.adj_offsets, interned.adj_messages, interned.adj_targets

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return " ||| ".join(c.name for c in self.components)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    @property
    def messages(self) -> MessageCombination:
        """The (un-indexed) message set ``E = union of component E_i``."""
        if self._messages is None:
            self._messages = MessageCombination(
                m for c in self.components for m in c.flow.messages
            )
        return self._messages

    @property
    def indexed_messages(self) -> Tuple[IndexedMessage, ...]:
        """Every indexed message labelling at least one edge (the
        interned message table -- already sorted)."""
        return self._interned.message_table

    def indices_of(self, message: Message) -> Tuple[int, ...]:
        """Instance indices under which *message* occurs in the product."""
        return tuple(
            sorted(
                {
                    m.index
                    for m in self._interned.message_table
                    if m.message == message
                }
            )
        )

    def outgoing(self, state: ProductState) -> Tuple[InterleavedTransition, ...]:
        cached = self._outgoing_cache.get(state)
        if cached is None:
            interned = self._interned
            sid = interned.state_ids.get(state)
            if sid is None:
                return ()
            lo = interned.adj_offsets[sid]
            hi = interned.adj_offsets[sid + 1]
            cached = tuple(
                InterleavedTransition(
                    state,
                    interned.message_table[interned.adj_messages[e]],
                    interned.state_table[interned.adj_targets[e]],
                )
                for e in range(lo, hi)
            )
            self._outgoing_cache[state] = cached
        return cached

    @property
    def message_occurrences(self) -> Dict[IndexedMessage, int]:
        """Edge count per indexed message over the whole product
        (computed once; the returned dict is a fresh copy)."""
        if self._message_occurrences is None:
            self._message_occurrences = {
                message: len(targets)
                for message, targets in self._edge_index().items()
            }
        return dict(self._message_occurrences)

    def destinations(self, message: IndexedMessage) -> List[ProductState]:
        """Target states of every edge labelled *message* (with
        multiplicity), backed by the per-message edge index."""
        table = self._interned.state_table
        return [
            table[target_id]
            for target_id in self._edge_index().get(message, ())
        ]

    def edge_target_ids(self) -> Dict[IndexedMessage, List[int]]:
        """Per-message target-state-ID lists (the edge index consumers
        like the information model iterate); see :meth:`_edge_index`."""
        return self._edge_index()

    def _edge_index(self) -> Dict[IndexedMessage, List[int]]:
        """Per-message target-ID lists, in transition-tuple order.

        One pass over ``transitions``; keys appear in first-encounter
        order and target multiplicity is preserved, which is what keeps
        the information model's float-sum order identical to the
        historical full-scan implementation.
        """
        if self._edge_targets_by_message is None:
            index: Dict[IndexedMessage, List[int]] = {}
            state_ids = self._interned.state_ids
            for t in self.transitions:
                index.setdefault(t.message, []).append(
                    state_ids[t.target]
                )
            self._edge_targets_by_message = index
        return self._edge_targets_by_message

    def visibility_index(self) -> VisibilityIndex:
        """Per-message coverage bitsets over interned state IDs
        (built once, straight from the CSR arrays)."""
        if self._visibility is None:
            with perf.timed("visibility_index"):
                interned = self._interned
                self._visibility = VisibilityIndex.from_edges(
                    len(interned.state_table),
                    zip(
                        (
                            interned.message_table[m]
                            for m in interned.adj_messages
                        ),
                        interned.adj_targets,
                    ),
                    interned.state_table,
                )
            perf.add("visibility_bitsets_built", 1)
        return self._visibility

    # ------------------------------------------------------------------
    # paths / executions
    # ------------------------------------------------------------------
    def topological_ids(self) -> List[int]:
        """State IDs in a (deterministic) topological order of the
        product DAG -- Kahn's algorithm over the CSR arrays."""
        if self._topological_ids is None:
            offsets, _, targets = self.csr_adjacency()
            n = len(self._interned.state_table)
            indegree = [0] * n
            for target_id in targets:
                indegree[target_id] += 1
            ready = [i for i in range(n) if indegree[i] == 0]
            order: List[int] = []
            while ready:
                state_id = ready.pop()
                order.append(state_id)
                for e in range(offsets[state_id], offsets[state_id + 1]):
                    target_id = targets[e]
                    indegree[target_id] -= 1
                    if indegree[target_id] == 0:
                        ready.append(target_id)
            if len(order) != n:
                raise InterleavingError(
                    "interleaved flow is not a DAG"
                )  # pragma: no cover - components are validated DAGs
            self._topological_ids = order
        return self._topological_ids

    def topological_order(self) -> List[ProductState]:
        """Reachable product states in topological order."""
        table = self._interned.state_table
        return [table[i] for i in self.topological_ids()]

    def paths_to_stop_ids(self) -> List[int]:
        """Paths-to-stop counts as an array indexed by state ID
        (memoised)."""
        if self._paths_to_stop_ids is None:
            offsets, _, targets = self.csr_adjacency()
            counts = [0] * len(self._interned.state_table)
            stop_ids = self._stop_ids
            for state_id in reversed(self.topological_ids()):
                total = 1 if state_id in stop_ids else 0
                for e in range(offsets[state_id], offsets[state_id + 1]):
                    total += counts[targets[e]]
                counts[state_id] = total
            self._paths_to_stop_ids = counts
        return self._paths_to_stop_ids

    def paths_to_stop(self) -> Dict[ProductState, int]:
        """Number of paths from each state to any stop state (memoised)."""
        if self._paths_to_stop is None:
            counts = self.paths_to_stop_ids()
            table = self._interned.state_table
            self._paths_to_stop = {
                table[i]: counts[i] for i in range(len(table))
            }
        return self._paths_to_stop

    def count_paths(self) -> int:
        """Total number of executions of the interleaved flow."""
        counts = self.paths_to_stop_ids()
        return sum(counts[i] for i in self._initial_ids)

    def executions(self) -> Iterator[Execution]:
        """Lazily enumerate executions (may be astronomically many --
        callers should bound their consumption)."""
        for start in sorted(self.initial):
            stack: List[
                Tuple[ProductState, Tuple[ProductState, ...], Tuple[IndexedMessage, ...]]
            ] = [(start, (start,), ())]
            while stack:
                state, path_states, path_msgs = stack.pop()
                if state in self.stop:
                    yield Execution(path_states, path_msgs)
                for t in reversed(self.outgoing(state)):
                    stack.append(
                        (t.target, path_states + (t.target,), path_msgs + (t.message,))
                    )

    def random_execution(self, rng: random.Random) -> Execution:
        """Sample one execution uniformly at random among all executions.

        Uses the path-count DP so every complete path has equal
        probability (a plain random walk would bias towards short or
        low-branching paths).
        """
        counts = self.paths_to_stop()
        starts = sorted(self.initial)
        weights = [counts.get(s, 0) for s in starts]
        if sum(weights) == 0:
            raise InterleavingError(
                f"interleaved flow {self.name} has no execution"
            )
        state = rng.choices(starts, weights=weights)[0]
        states: List[ProductState] = [state]
        msgs: List[IndexedMessage] = []
        while True:
            options: List[Tuple[Optional[InterleavedTransition], int]] = []
            if state in self.stop:
                options.append((None, 1))
            for t in self.outgoing(state):
                options.append((t, counts[t.target]))
            choice = rng.choices(
                [o for o, _ in options], weights=[w for _, w in options]
            )[0]
            if choice is None:
                return Execution(tuple(states), tuple(msgs))
            msgs.append(choice.message)
            states.append(choice.target)
            state = choice.target

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------
    def project(self, execution: Execution, component: IndexedFlow) -> Execution:
        """Project an interleaved execution onto one component instance.

        The result is the component's own execution: its local state
        sequence with the messages carrying *component*'s index.
        """
        position = self.components.index(component)
        local_states: List[object] = [execution.states[0][position].state]
        local_msgs: List[Message] = []
        for msg, state in zip(execution.messages, execution.states[1:]):
            if isinstance(msg, IndexedMessage) and msg.index == component.index \
                    and msg.message in component.flow.messages:
                local_msgs.append(msg.message)
                local_states.append(state[position].state)
        return Execution(tuple(local_states), tuple(local_msgs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterleavedFlow({self.name!r}, |S|={self.num_states}, "
            f"|delta|={self.num_transitions})"
        )


def interleave(instances: Sequence[IndexedFlow]) -> InterleavedFlow:
    """Construct the reachable interleaving of *instances* (Definition 5).

    Parameters
    ----------
    instances:
        Pairwise legally indexed flow instances (Definition 4);
        violations raise :class:`~repro.errors.IndexingError`.

    Returns
    -------
    InterleavedFlow
        The reachable product automaton.  Atomic-state mutual exclusion
        is enforced: a component moves only while every other component
        is outside its atomic set, so no reachable state has two
        components simultaneously atomic.

    Notes
    -----
    The BFS works on interned integers: product states are deduplicated
    through an intern dict the moment they are generated, per-component
    local adjacency is materialized once up front (instead of rebuilding
    indexed ``(message, target)`` pairs on every visit), and edges are
    collected as ID triples that are sorted and packed into the CSR
    arrays the :class:`InterleavedFlow` hot paths consume.  The
    resulting object-level ``states``/``transitions`` are identical --
    including order -- to the historical object-graph construction.
    """
    with perf.timed("interleave"):
        instances = tuple(instances)
        if not instances:
            raise InterleavingError("cannot interleave zero flow instances")
        check_legally_indexed(instances)

        positions = range(len(instances))
        # per-component adjacency and atomic sets, materialized once
        local_outgoing: List[Dict[IndexedState, Tuple[Tuple[IndexedMessage, IndexedState], ...]]] = [
            {state: tuple(inst.outgoing(state)) for state in inst.states}
            for inst in instances
        ]
        atomic_sets: List[FrozenSet[IndexedState]] = [
            frozenset(inst.atomic) for inst in instances
        ]

        initial_states: List[ProductState] = [
            combo
            for combo in itertools.product(
                *(inst.initial for inst in instances)
            )
        ]

        # BFS with discovery-order interning
        discovery_ids: Dict[ProductState, int] = {}
        discovered: List[ProductState] = []
        for state in initial_states:
            if state not in discovery_ids:
                discovery_ids[state] = len(discovered)
                discovered.append(state)
        edges: List[Tuple[int, IndexedMessage, int]] = []
        frontier: List[ProductState] = list(discovered)
        while frontier:
            current = frontier.pop()
            current_id = discovery_ids[current]
            atomic_positions = [
                j for j in positions if current[j] in atomic_sets[j]
            ]
            if not atomic_positions:
                movable: Sequence[int] = positions
            elif len(atomic_positions) == 1:
                # only the atomic component itself may move
                movable = atomic_positions
            else:  # pragma: no cover - unreachable from legal initials
                movable = ()
            for position in movable:
                for message, target_local in local_outgoing[position][
                    current[position]
                ]:
                    target = (
                        current[:position]
                        + (target_local,)
                        + current[position + 1:]
                    )
                    target_id = discovery_ids.get(target)
                    if target_id is None:
                        target_id = len(discovered)
                        discovery_ids[target] = target_id
                        discovered.append(target)
                        frontier.append(target)
                    edges.append((current_id, message, target_id))

        # final dense IDs follow the states' sort order, so integer
        # comparisons agree with object comparisons everywhere
        state_table = tuple(sorted(discovered))
        state_ids = {state: i for i, state in enumerate(state_table)}
        final_of = [0] * len(discovered)
        for discovery_id, state in enumerate(discovered):
            final_of[discovery_id] = state_ids[state]
        message_table = tuple(sorted({message for _, message, _ in edges}))
        message_ids = {m: i for i, m in enumerate(message_table)}
        id_edges = sorted(
            (final_of[src], message_ids[message], final_of[tgt])
            for src, message, tgt in edges
        )
        interned = _finish_interning(
            state_table, state_ids, message_table, message_ids, id_edges
        )

        # object-level views, in the exact historical order (the edge
        # sort above equals sorting InterleavedTransition objects)
        transitions = tuple(
            InterleavedTransition(
                state_table[src], message_table[mid], state_table[tgt]
            )
            for src, mid, tgt in id_edges
        )
        stop_sets = [frozenset(inst.stop) for inst in instances]
        stop_states = frozenset(
            s
            for s in state_table
            if all(s[i] in stop_sets[i] for i in positions)
        )
        perf.add("interleave_states_expanded", len(state_table))
        perf.add("interleave_transitions", len(transitions))
        return InterleavedFlow(
            components=instances,
            states=frozenset(state_table),
            initial=frozenset(initial_states),
            stop=stop_states,
            transitions=transitions,
            interned=interned,
        )


def interleave_flows(
    flows: Sequence[Flow], copies: int = 1
) -> InterleavedFlow:
    """Convenience wrapper: index *copies* instances of each flow
    (legally, via :func:`repro.core.indexing.index_flows`) and
    interleave them all."""
    if copies < 1:
        raise InterleavingError(f"copies must be >= 1, got {copies}")
    expanded: List[Flow] = []
    for flow in flows:
        expanded.extend([flow] * copies)
    return interleave(index_flows(expanded))
