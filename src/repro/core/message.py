"""Messages, message groups, indexed messages, and message combinations.

A *message* is a pair ``<C, w>`` where ``C`` is the (implicit) content and
``w`` the number of bits needed to represent it (Section 2, Conventions).
Messages travel between a source IP and a destination IP across an
interface; in this library both endpoints are recorded so that the debug
engine can reason about *legal IP pairs* (Section 5.6).

A message may be a *sub-group* of a wider message (Section 3.3): e.g. in
OpenSPARC T2 ``cputhreadid`` (6 bits) is a sub-group of ``dmusiidata``
(20 bits).  Sub-groups are first-class :class:`Message` objects whose
``parent`` names the enclosing message; the packing step of the selection
algorithm uses them to fill leftover trace-buffer bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple


@dataclass(frozen=True, order=True)
class Message:
    """An application-level message ``<C, w>``.

    Parameters
    ----------
    name:
        Unique, human-readable message name (e.g. ``"dmusiidata"``).
    width:
        Bit width ``w`` of the message content.  Must be positive.  For
        multi-cycle messages this is the number of bits traced in a
        single cycle (footnote 2 of the paper).
    source:
        Name of the IP that sends the message, or ``None`` when the
        endpoint is not modelled (e.g. toy examples).
    destination:
        Name of the IP that receives the message, or ``None``.
    parent:
        Name of the enclosing message when this message is a sub-group
        (e.g. ``cputhreadid`` has ``parent="dmusiidata"``), else ``None``.
    beats:
        Clock cycles the message takes on its interface.  For
        multi-cycle messages, ``width`` is the number of bits traced in
        a single cycle (footnote 2 of the paper) and the full content
        is ``width * beats`` bits.
    """

    name: str
    width: int
    source: Optional[str] = field(default=None, compare=False)
    destination: Optional[str] = field(default=None, compare=False)
    parent: Optional[str] = field(default=None, compare=False)
    beats: int = field(default=1, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("message name must be non-empty")
        if self.width <= 0:
            raise ValueError(
                f"message {self.name!r} must have positive bit width, "
                f"got {self.width}"
            )
        if self.beats < 1:
            raise ValueError(
                f"message {self.name!r} must take at least one beat, "
                f"got {self.beats}"
            )

    @property
    def content_width(self) -> int:
        """Total content bits across all beats (``width * beats``)."""
        return self.width * self.beats

    @property
    def is_subgroup(self) -> bool:
        """Whether this message is a sub-group of a wider message."""
        return self.parent is not None

    @property
    def ip_pair(self) -> Optional[Tuple[str, str]]:
        """The ``(source, destination)`` IP pair, if both are known."""
        if self.source is None or self.destination is None:
            return None
        return (self.source, self.destination)

    def indexed(self, index: int) -> "IndexedMessage":
        """Return this message tagged with a flow-instance *index*."""
        return IndexedMessage(self, index)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name}, {self.width}>"


def width(message: Message) -> int:
    """``width(m)`` of the paper -- the bit width of *m*."""
    return message.width


@dataclass(frozen=True, order=True)
class IndexedMessage:
    """A message tagged with the index of its flow instance (Def. 3).

    ``IndexedMessage(ReqE, 1)`` renders as ``1:ReqE``, matching the
    notation of Figure 1b of the paper.
    """

    message: Message
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("message index must be non-negative")

    @property
    def name(self) -> str:
        """``"<index>:<message name>"``, e.g. ``"1:ReqE"``."""
        return f"{self.index}:{self.message.name}"

    @property
    def width(self) -> int:
        """Bit width of the underlying message."""
        return self.message.width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class MessageCombination(FrozenSet[Message]):
    """An unordered set of messages (Definition 6).

    The *total bit width* ``W(M)`` is the sum of the widths of the
    contained messages.  Indexed instances of the same message do not
    contribute separately: the combination stores plain
    :class:`Message` objects only.

    The class is a thin ``frozenset`` subclass so combinations are
    hashable, support set algebra, and can be used as dict keys when
    memoising information-gain computations.
    """

    def __new__(cls, messages: Iterable[Message] = ()) -> "MessageCombination":
        msgs = tuple(messages)
        for m in msgs:
            if isinstance(m, IndexedMessage):
                raise TypeError(
                    "MessageCombination holds plain messages; strip "
                    f"the index from {m!r} first"
                )
            if not isinstance(m, Message):
                raise TypeError(f"not a Message: {m!r}")
        return super().__new__(cls, msgs)

    @property
    def total_width(self) -> int:
        """``W(M) = sum of width(m) for m in M`` (Definition 6)."""
        return sum(m.width for m in self)

    def fits(self, buffer_width: int) -> bool:
        """Whether the combination fits in a *buffer_width*-bit buffer."""
        return self.total_width <= buffer_width

    def names(self) -> Tuple[str, ...]:
        """Sorted message names, handy for reporting and testing."""
        return tuple(sorted(m.name for m in self))

    def with_message(self, message: Message) -> "MessageCombination":
        """A new combination with *message* added."""
        return MessageCombination(tuple(self) + (message,))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ", ".join(self.names()) + "}"


def indexed_instances(
    combination: Iterable[Message], indices: Iterable[int]
) -> Iterator[IndexedMessage]:
    """Yield every indexed instance of every message in *combination*.

    The selection metric of Section 3.2 evaluates a candidate
    combination ``Y'`` through the random variable ``Y`` ranging over
    *all indexed messages corresponding to* ``Y'``; this helper builds
    that set, e.g. ``{ReqE, GntE}`` with indices ``(1, 2)`` yields
    ``1:ReqE, 2:ReqE, 1:GntE, 2:GntE``.
    """
    index_list = tuple(indices)
    for message in combination:
        for index in index_list:
            yield IndexedMessage(message, index)
