"""Per-message visibility bitsets for Definition-7 coverage.

:func:`repro.core.coverage.visible_states` answers "which states does
this message combination make visible?" with a full scan of the
transition relation -- O(|delta|) per query.  Step 2 of the selection
method asks that question once per feasible combination, which made
exhaustive selection O(#combinations x |delta|).

A :class:`VisibilityIndex` precomputes, once per flow, a bitset over
interned state IDs for every distinct edge label: bit ``i`` of
``bits_for(m)`` is set iff state ID ``i`` is reached by a transition
that message *m* makes visible.  The sub-group rule of Section 3.3 is
folded in: a message with a ``parent`` also lights up every edge whose
label *name* equals that parent (observing ``cputhreadid`` timestamps
the enclosing ``dmusiidata``).  Coverage of a combination is then an
O(|combination|) big-int OR followed by one popcount -- bit-identical
to the reference set computation, because bit positions are exactly
the distinct visible target states.

Python big-ints are the bitset representation: arbitrary width, O(n/64)
bitwise ops in C, no dependencies.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.core.message import IndexedMessage, Message

if hasattr(int, "bit_count"):  # Python >= 3.10
    def popcount(bits: int) -> int:
        """Number of set bits of *bits*."""
        return bits.bit_count()
else:  # pragma: no cover - exercised on Python 3.9 CI only
    def popcount(bits: int) -> int:
        """Number of set bits of *bits*."""
        return bin(bits).count("1")


def _underlying(message: object) -> Message:
    """Strip the index from an indexed message, pass plain ones through."""
    if isinstance(message, IndexedMessage):
        return message.message
    if isinstance(message, Message):
        return message
    raise TypeError(f"not a message: {message!r}")


class VisibilityIndex:
    """Precomputed per-message visibility bitsets of one flow.

    Parameters
    ----------
    num_states:
        ``|S|`` of the flow -- the denominator of Definition 7 and the
        bitset width.
    by_message:
        Plain message -> bitset of target-state IDs of the edges it
        labels (indexed labels are collapsed onto their underlying
        message, as in the reference implementation).
    by_label_name:
        Edge label *name* -> the same bitsets, for the sub-group
        parent-name rule.
    states:
        Interned state table (ID -> state), used only to translate
        bitsets back into state sets for debugging/verification.
    """

    def __init__(
        self,
        num_states: int,
        by_message: Mapping[Message, int],
        by_label_name: Mapping[str, int],
        states: Tuple[Hashable, ...] = (),
    ) -> None:
        self.num_states = num_states
        self._by_message: Dict[Message, int] = dict(by_message)
        self._by_name: Dict[str, int] = dict(by_label_name)
        self._states = states

    @classmethod
    def from_edges(
        cls,
        num_states: int,
        edges: Iterable[Tuple[object, int]],
        states: Tuple[Hashable, ...] = (),
    ) -> "VisibilityIndex":
        """Build an index from ``(label, target_state_id)`` pairs."""
        by_message: Dict[Message, int] = {}
        by_name: Dict[str, int] = {}
        for label, target_id in edges:
            plain = _underlying(label)
            bit = 1 << target_id
            by_message[plain] = by_message.get(plain, 0) | bit
            by_name[plain.name] = by_name.get(plain.name, 0) | bit
        return cls(num_states, by_message, by_name, states)

    # ------------------------------------------------------------------
    def bits_for(self, message: object) -> int:
        """Bitset of state IDs made visible by *message* alone.

        Mirrors the reference rule exactly: edges labelled with the
        (underlying) message itself, plus -- when the message is a
        sub-group -- edges whose label name equals its ``parent``.
        """
        plain = _underlying(message)
        bits = self._by_message.get(plain, 0)
        if plain.parent is not None:
            bits |= self._by_name.get(plain.parent, 0)
        return bits

    def union_bits(self, messages: Iterable[object]) -> int:
        """OR of :meth:`bits_for` over *messages* -- O(|messages|)."""
        bits = 0
        for message in messages:
            bits |= self.bits_for(message)
        return bits

    def visible_count(self, messages: Iterable[object]) -> int:
        """``|visible states|`` of the combination (popcount of the OR)."""
        return popcount(self.union_bits(messages))

    def coverage(self, messages: Iterable[object]) -> float:
        """Definition 7: ``|visible states| / |S|``."""
        if self.num_states == 0:
            raise ValueError("flow has no states")
        return self.visible_count(messages) / self.num_states

    def visible_state_set(self, messages: Iterable[object]) -> set:
        """The visible states as objects (needs the state table)."""
        if not self._states:
            raise ValueError(
                "this VisibilityIndex was built without a state table"
            )
        bits = self.union_bits(messages)
        return {
            self._states[i]
            for i in range(self.num_states)
            if (bits >> i) & 1
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VisibilityIndex(|S|={self.num_states}, "
            f"|messages|={len(self._by_message)})"
        )


def index_flow_visibility(flow: object) -> VisibilityIndex:
    """Build a :class:`VisibilityIndex` for any flow-like object.

    Works for :class:`~repro.core.flow.Flow` and anything else exposing
    ``states`` and a ``transitions`` iterable of labelled edges.  State
    IDs are assigned deterministically (sorted by ``str``); the
    resulting coverage numbers are ID-assignment invariant anyway.
    :class:`~repro.core.interleave.InterleavedFlow` has its own
    construction path straight from its interned tables.
    """
    states: Tuple[Hashable, ...] = tuple(
        sorted(flow.states, key=str)  # type: ignore[attr-defined]
    )
    ids = {state: i for i, state in enumerate(states)}
    edges: List[Tuple[object, int]] = [
        (t.message, ids[t.target])
        for t in flow.transitions  # type: ignore[attr-defined]
    ]
    return VisibilityIndex.from_edges(len(states), edges, states)
