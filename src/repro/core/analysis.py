"""Combinatorial analysis of interleavings (closed forms).

For *linear* flows (chains -- which all five T2 flows are) the number
of interleaved executions has a closed form:

* without atomic states, the executions of ``F1 ||| ... ||| Fn`` are
  the shuffles of the component traces: the multinomial coefficient
  ``(sum of lengths)! / prod(length_i!)``;
* atomic states only *remove* interleavings (they forbid moves of
  other components), so the multinomial is a hard upper bound;
* a chain whose atomic state ``s`` sits between messages ``a`` and
  ``b`` forces ``a;b`` to be contiguous, which is equivalent to fusing
  them into one symbol -- shortening the effective length by one per
  atomic state for counting purposes (exact when no other flow's
  atomic states interact).

These formulas cross-check the product construction (the property
tests compare them against :meth:`InterleavedFlow.count_paths`) and
let users size a scenario before materializing it.
"""

from __future__ import annotations

from math import factorial
from typing import Iterable, Sequence

from repro.core.flow import Flow
from repro.errors import FlowValidationError


def is_linear(flow: Flow) -> bool:
    """Whether *flow* is a single chain (every state has <= 1 successor
    and there is exactly one execution)."""
    if len(flow.initial) != 1 or len(flow.stop) != 1:
        return False
    for state in flow.states:
        if len(flow.outgoing(state)) > 1:
            return False
    return flow.count_executions() == 1


def chain_length(flow: Flow) -> int:
    """Number of messages along a linear flow.

    Raises
    ------
    FlowValidationError
        If the flow is not linear.
    """
    if not is_linear(flow):
        raise FlowValidationError(
            f"flow {flow.name!r} is not a linear chain"
        )
    return len(flow.transitions)


def shuffle_count(lengths: Sequence[int]) -> int:
    """Multinomial: interleavings of chains with the given lengths."""
    total = sum(lengths)
    result = factorial(total)
    for length in lengths:
        result //= factorial(length)
    return result


def effective_length(flow: Flow) -> int:
    """Chain length with each atomic-state passage fused (see module
    docstring): ``messages - interior atomic states``."""
    length = chain_length(flow)
    interior_atomics = sum(
        1
        for state in flow.atomic
        if flow.outgoing(state)  # atomic stop states cannot exist
    )
    return length - interior_atomics


def interleaving_upper_bound(flows: Iterable[Flow]) -> int:
    """Upper bound on the executions of the interleaving of linear
    *flows*: the unconstrained shuffle count."""
    return shuffle_count([chain_length(f) for f in flows])


def interleaving_count_linear(flows: Iterable[Flow]) -> int:
    """Exact execution count for interleaved linear flows whose atomic
    sections are *independent* (no two flows can sit in atomic states
    simultaneously by construction of Definition 5, and the fused-step
    equivalence applies per flow).

    Each atomic interior state forces its incoming and outgoing
    messages to be adjacent in every execution, so counting shuffles of
    the *fused* chains is exact.
    """
    return shuffle_count([effective_length(f) for f in flows])
