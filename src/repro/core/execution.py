"""Execution and trace utilities shared across the library.

An :class:`~repro.core.flow.Execution` is an alternating sequence of
states and messages (Definition 2).  During post-silicon debug only a
*projection* of the execution's trace is observable: the subsequence of
messages that were selected for tracing.  The helpers here implement
the projection and subsequence algebra used by path localization
(Section 5.2) and the debug engine (Sections 5.6-5.7).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.flow import Execution
from repro.core.message import IndexedMessage, Message


def underlying_message(message: object) -> Message:
    """The plain message behind a possibly indexed label."""
    if isinstance(message, IndexedMessage):
        return message.message
    if isinstance(message, Message):
        return message
    raise TypeError(f"not a message: {message!r}")


def project_trace(
    trace: Sequence[object], selected: Iterable[Message]
) -> Tuple[object, ...]:
    """The observable subsequence of *trace* through a trace buffer.

    Only messages whose underlying message is in *selected* survive;
    order is preserved.  Indexed labels stay indexed (tagging support in
    the SoC keeps instance indices observable, Section 2).
    """
    wanted: Set[Message] = {underlying_message(m) for m in selected}
    return tuple(m for m in trace if underlying_message(m) in wanted)


def is_subsequence(
    needle: Sequence[object], haystack: Sequence[object]
) -> bool:
    """Whether *needle* occurs in *haystack* as an ordered subsequence."""
    iterator = iter(haystack)
    return all(any(item == other for other in iterator) for item in needle)


def message_names(trace: Sequence[object]) -> Tuple[str, ...]:
    """Human-readable names of a trace, for reports and assertions."""
    names: List[str] = []
    for m in trace:
        if isinstance(m, IndexedMessage):
            names.append(m.name)
        elif isinstance(m, Message):
            names.append(m.name)
        else:
            names.append(str(m))
    return tuple(names)


def validate_execution(flow: object, execution: Execution) -> bool:
    """Whether *execution* is a valid path of *flow*.

    Works for plain flows and interleaved flows: checks the start state
    is initial, the end state is a stop state, and every step is a
    transition of the flow.
    """
    if not execution.states:
        return False
    if execution.states[0] not in flow.initial:  # type: ignore[attr-defined]
        return False
    if execution.states[-1] not in flow.stop:  # type: ignore[attr-defined]
        return False
    for src, msg, dst in zip(
        execution.states, execution.messages, execution.states[1:]
    ):
        if not any(
            t.message == msg and t.target == dst
            for t in flow.outgoing(src)  # type: ignore[attr-defined]
        ):
            return False
    return True
