"""Indexed flows: Definitions 3 and 4 of the paper.

A flow can be invoked several times -- even concurrently -- during a
single run of the system.  *Indexing* distinguishes the instances by
tagging every state and message of a flow with an instance index, the
formal counterpart of architectural *tagging* support in real SoCs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.flow import Flow
from repro.core.message import IndexedMessage
from repro.errors import IndexingError

State = Hashable


@dataclass(frozen=True, order=True)
class IndexedState:
    """A flow state tagged with an instance index (Definition 3)."""

    state: str
    index: int

    @property
    def name(self) -> str:
        """``"<state><index>"`` -- e.g. ``("Wait", 1)`` renders ``w1``-style."""
        return f"{self.state}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class IndexedFlow:
    """A flow whose states and messages carry an instance index.

    The indexed flow ``<F, k>`` of Definition 3 is structurally the same
    DAG as ``F`` with every state ``s`` replaced by ``<s, k>`` and every
    message ``m`` by ``<m, k>``.
    """

    def __init__(self, flow: Flow, index: int) -> None:
        if index < 0:
            raise IndexingError(
                f"flow instance index must be non-negative, got {index}"
            )
        self.flow = flow
        self.index = index

    @property
    def name(self) -> str:
        """``"<flow name>#<index>"``, e.g. ``"PIOR#1"``."""
        return f"{self.flow.name}#{self.index}"

    @property
    def states(self) -> Tuple[IndexedState, ...]:
        return tuple(
            sorted(IndexedState(str(s), self.index) for s in self.flow.states)
        )

    @property
    def initial(self) -> Tuple[IndexedState, ...]:
        return tuple(
            sorted(IndexedState(str(s), self.index) for s in self.flow.initial)
        )

    @property
    def stop(self) -> Tuple[IndexedState, ...]:
        return tuple(
            sorted(IndexedState(str(s), self.index) for s in self.flow.stop)
        )

    @property
    def atomic(self) -> Tuple[IndexedState, ...]:
        return tuple(
            sorted(IndexedState(str(s), self.index) for s in self.flow.atomic)
        )

    @property
    def messages(self) -> Tuple[IndexedMessage, ...]:
        return tuple(
            sorted(IndexedMessage(m, self.index) for m in self.flow.messages)
        )

    def transitions(self) -> List[Tuple[IndexedState, IndexedMessage, IndexedState]]:
        """The indexed transition relation."""
        result = []
        for t in self.flow.transitions:
            result.append(
                (
                    IndexedState(str(t.source), self.index),
                    IndexedMessage(t.message, self.index),
                    IndexedState(str(t.target), self.index),
                )
            )
        return result

    def outgoing(
        self, state: IndexedState
    ) -> List[Tuple[IndexedMessage, IndexedState]]:
        """Indexed ``(message, target)`` pairs leaving *state*."""
        if state.index != self.index:
            raise IndexingError(
                f"state {state} does not belong to flow instance {self.name}"
            )
        return [
            (
                IndexedMessage(t.message, self.index),
                IndexedState(str(t.target), self.index),
            )
            for t in self.flow.outgoing(state.state)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexedFlow({self.flow.name!r}, index={self.index})"


def legally_indexed(first: IndexedFlow, second: IndexedFlow) -> bool:
    """Definition 4: legal iff different flows, or same flow with
    different indices."""
    if first.flow is not second.flow and first.flow.name != second.flow.name:
        return True
    return first.index != second.index


def check_legally_indexed(instances: Iterable[IndexedFlow]) -> None:
    """Raise :class:`IndexingError` unless *instances* are pairwise
    legally indexed (Definition 4)."""
    seen: Dict[Tuple[str, int], str] = {}
    for inst in instances:
        key = (inst.flow.name, inst.index)
        if key in seen:
            raise IndexingError(
                f"flow instances {inst.name} and {seen[key]} are not "
                "legally indexed: same flow, same index"
            )
        seen[key] = inst.name


def index_flows(flows: Iterable[Flow]) -> List[IndexedFlow]:
    """Index *flows* so the result is pairwise legally indexed.

    Instances of the same flow receive consecutive indices starting at
    1; distinct flows may share indices (which Definition 4 allows).
    """
    counters: Dict[str, int] = {}
    instances: List[IndexedFlow] = []
    for flow in flows:
        counters[flow.name] = counters.get(flow.name, 0) + 1
        instances.append(IndexedFlow(flow, counters[flow.name]))
    return instances
