"""A text format for flow specifications.

The paper's method consumes flows produced as architectural collateral
(Section 1: transaction-level models "to enable early validation,
prototyping, and software development").  This module defines the
interchange format a validation team would actually keep in its repo --
line-oriented, diff-friendly, commentable:

.. code-block:: text

    # repro-flowspec v1
    flow CacheCoherence
      state n initial
      state w
      state c atomic
      state d stop
      message ReqE 1 from 1 to Dir
      message GntE 1 from Dir to 1
      message Ack 1 from 1 to Dir
      transition n -> w on ReqE
      transition w -> c on GntE
      transition c -> d on Ack
    end

    subgroup cputhreadid 6 of dmusiidata

A file may define any number of flows plus top-level ``subgroup``
declarations (for trace-buffer packing).  ``parse_flowspec`` builds
validated :class:`~repro.core.flow.Flow` objects; ``format_flowspec``
round-trips them back to text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.core.flow import Flow, Transition
from repro.core.message import Message
from repro.errors import FlowValidationError

HEADER = "# repro-flowspec v1"


@dataclass(frozen=True)
class FlowSpec:
    """A parsed flow-specification file."""

    flows: Dict[str, Flow]
    subgroups: Tuple[Message, ...]

    def flow(self, name: str) -> Flow:
        try:
            return self.flows[name]
        except KeyError:
            raise KeyError(
                f"flowspec has no flow {name!r}; defines "
                f"{sorted(self.flows)}"
            ) from None


class _SpecError(FlowValidationError):
    """Parse error carrying the offending line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"flowspec line {lineno}: {message}")


def parse_flowspec(stream: TextIO) -> FlowSpec:
    """Parse a flow-specification file.

    Raises
    ------
    FlowValidationError
        On syntax errors (with the line number) or when a completed
        flow violates Definition 1.
    """
    flows: Dict[str, Flow] = {}
    subgroups: List[Message] = []
    message_catalog: Dict[str, Message] = {}

    current_name: Optional[str] = None
    states: List[str] = []
    initial: List[str] = []
    stop: List[str] = []
    atomic: List[str] = []
    messages: Dict[str, Message] = {}
    transitions: List[Transition] = []
    start_line = 0

    def finish(lineno: int) -> None:
        nonlocal current_name
        if current_name is None:
            raise _SpecError(lineno, "'end' without an open flow")
        flows[current_name] = Flow(
            name=current_name,
            states=states,
            initial=initial,
            stop=stop,
            transitions=transitions,
            atomic=atomic,
        )
        current_name = None

    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]

        if keyword == "flow":
            if current_name is not None:
                raise _SpecError(
                    lineno,
                    f"flow {tokens[1] if len(tokens) > 1 else '?'!r} "
                    f"opened before 'end' of flow {current_name!r} "
                    f"(line {start_line})",
                )
            if len(tokens) != 2:
                raise _SpecError(lineno, "expected: flow <name>")
            if tokens[1] in flows:
                raise _SpecError(lineno, f"duplicate flow {tokens[1]!r}")
            current_name = tokens[1]
            start_line = lineno
            states, initial, stop, atomic = [], [], [], []
            messages, transitions = {}, []
            continue

        if keyword == "end":
            finish(lineno)
            continue

        if keyword == "subgroup":
            # subgroup <name> <width> of <parent>
            if len(tokens) != 5 or tokens[3] != "of":
                raise _SpecError(
                    lineno, "expected: subgroup <name> <width> of <parent>"
                )
            name, width_text, _, parent = tokens[1:5]
            width = _parse_width(lineno, width_text)
            parent_msg = message_catalog.get(parent)
            subgroups.append(
                Message(
                    name,
                    width,
                    source=parent_msg.source if parent_msg else None,
                    destination=(
                        parent_msg.destination if parent_msg else None
                    ),
                    parent=parent,
                )
            )
            continue

        if current_name is None:
            raise _SpecError(
                lineno, f"{keyword!r} outside of a flow block"
            )

        if keyword == "state":
            # state <name> [initial|stop|atomic]...
            if len(tokens) < 2:
                raise _SpecError(lineno, "expected: state <name> [flags]")
            name = tokens[1]
            if name in states:
                raise _SpecError(lineno, f"duplicate state {name!r}")
            states.append(name)
            for flag in tokens[2:]:
                if flag == "initial":
                    initial.append(name)
                elif flag == "stop":
                    stop.append(name)
                elif flag == "atomic":
                    atomic.append(name)
                else:
                    raise _SpecError(
                        lineno,
                        f"unknown state flag {flag!r} "
                        "(initial, stop, atomic)",
                    )
            continue

        if keyword == "message":
            # message <name> <width> [from <src> to <dst>]
            if len(tokens) not in (3, 7):
                raise _SpecError(
                    lineno,
                    "expected: message <name> <width> "
                    "[from <src> to <dst>]",
                )
            name = tokens[1]
            width = _parse_width(lineno, tokens[2])
            source = destination = None
            if len(tokens) == 7:
                if tokens[3] != "from" or tokens[5] != "to":
                    raise _SpecError(
                        lineno, "expected: ... from <src> to <dst>"
                    )
                source, destination = tokens[4], tokens[6]
            known = message_catalog.get(name)
            if known is not None and known.width != width:
                raise _SpecError(
                    lineno,
                    f"message {name!r} redefined with width {width} "
                    f"(was {known.width})",
                )
            message = known or Message(
                name, width, source=source, destination=destination
            )
            message_catalog[name] = message
            messages[name] = message
            continue

        if keyword == "transition":
            # transition <src> -> <dst> on <message>
            if (
                len(tokens) != 6
                or tokens[2] != "->"
                or tokens[4] != "on"
            ):
                raise _SpecError(
                    lineno,
                    "expected: transition <src> -> <dst> on <message>",
                )
            source, target, label = tokens[1], tokens[3], tokens[5]
            if label not in messages:
                raise _SpecError(
                    lineno,
                    f"transition uses undeclared message {label!r}",
                )
            transitions.append(
                Transition(source, messages[label], target)
            )
            continue

        raise _SpecError(lineno, f"unknown keyword {keyword!r}")

    if current_name is not None:
        raise _SpecError(
            start_line, f"flow {current_name!r} is missing its 'end'"
        )
    return FlowSpec(flows=flows, subgroups=tuple(subgroups))


def _parse_width(lineno: int, text: str) -> int:
    try:
        width = int(text)
    except ValueError:
        raise _SpecError(lineno, f"width must be an integer, got {text!r}")
    if width <= 0:
        raise _SpecError(lineno, f"width must be positive, got {width}")
    return width


def format_flowspec(
    flows: Sequence[Flow], subgroups: Sequence[Message] = ()
) -> str:
    """Serialize *flows* (and packing *subgroups*) to flowspec text.

    The output round-trips through :func:`parse_flowspec`.
    """
    lines: List[str] = [HEADER, ""]
    for flow in flows:
        lines.append(f"flow {flow.name}")
        ordered = flow.topological_order()
        for state in ordered:
            flags: List[str] = []
            if state in flow.initial:
                flags.append("initial")
            if state in flow.stop:
                flags.append("stop")
            if state in flow.atomic:
                flags.append("atomic")
            suffix = (" " + " ".join(flags)) if flags else ""
            lines.append(f"  state {state}{suffix}")
        for message in sorted(flow.messages):
            endpoint = ""
            if message.source and message.destination:
                endpoint = f" from {message.source} to {message.destination}"
            lines.append(
                f"  message {message.name} {message.width}{endpoint}"
            )
        for t in flow.transitions:
            lines.append(
                f"  transition {t.source} -> {t.target} on "
                f"{t.message.name}"
            )
        lines.append("end")
        lines.append("")
    for group in subgroups:
        lines.append(
            f"subgroup {group.name} {group.width} of {group.parent}"
        )
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# diff / equivalence helpers
# ----------------------------------------------------------------------
def flow_language(flow: Flow) -> FrozenSet[Tuple[str, ...]]:
    """The trace language of *flow*: every execution's message-name
    sequence.

    Flows are DAGs, so the language is finite.  Two flows with the
    same language admit exactly the same observable message orderings,
    which is the behavioural notion a mined specification is judged
    by -- state names are renamings, not behaviour.
    """
    return frozenset(
        tuple(m.name for m in execution.messages)
        for execution in flow.executions()
    )


def flows_equivalent(a: Flow, b: Flow) -> bool:
    """Whether two flows admit the same set of message orderings.

    Language equality deliberately ignores state names (a mined flow
    names its states ``q0, q1, ...``) and message widths/endpoints
    (those come from the shared catalog, not the flow shape).
    """
    return flow_language(a) == flow_language(b)


def diff_flows(a: Flow, b: Flow, limit: int = 8) -> List[str]:
    """Human-readable structural and behavioural differences.

    Returns an empty list when the flows are language-equivalent and
    have the same state/transition counts; otherwise one line per
    difference (at most *limit* example traces per direction).
    """
    lines: List[str] = []
    if a.num_states != b.num_states:
        lines.append(
            f"states: {a.name} has {a.num_states}, "
            f"{b.name} has {b.num_states}"
        )
    if len(a.transitions) != len(b.transitions):
        lines.append(
            f"transitions: {a.name} has {len(a.transitions)}, "
            f"{b.name} has {len(b.transitions)}"
        )
    names_a = {m.name for m in a.messages}
    names_b = {m.name for m in b.messages}
    for name in sorted(names_a - names_b):
        lines.append(f"message {name} only in {a.name}")
    for name in sorted(names_b - names_a):
        lines.append(f"message {name} only in {b.name}")
    lang_a, lang_b = flow_language(a), flow_language(b)
    for trace in sorted(lang_a - lang_b)[:limit]:
        lines.append(f"trace only in {a.name}: {' '.join(trace)}")
    for trace in sorted(lang_b - lang_a)[:limit]:
        lines.append(f"trace only in {b.name}: {' '.join(trace)}")
    return lines


def diff_flowspecs(a: FlowSpec, b: FlowSpec, limit: int = 8) -> List[str]:
    """Differences between two flow specifications, one line each.

    Flows are paired by name; an empty result means both specs define
    the same flow names, language-equivalent flows, and the same
    sub-group declarations.
    """
    lines: List[str] = []
    only_a = sorted(set(a.flows) - set(b.flows))
    only_b = sorted(set(b.flows) - set(a.flows))
    for name in only_a:
        lines.append(f"flow {name} only in first spec")
    for name in only_b:
        lines.append(f"flow {name} only in second spec")
    for name in sorted(set(a.flows) & set(b.flows)):
        for line in diff_flows(a.flows[name], b.flows[name], limit=limit):
            lines.append(f"{name}: {line}")
    groups_a = {(g.name, g.width, g.parent) for g in a.subgroups}
    groups_b = {(g.name, g.width, g.parent) for g in b.subgroups}
    for name, width, parent in sorted(groups_a - groups_b):
        lines.append(f"subgroup {name} {width} of {parent} only in first spec")
    for name, width, parent in sorted(groups_b - groups_a):
        lines.append(
            f"subgroup {name} {width} of {parent} only in second spec"
        )
    return lines
