"""Mutual information gain over an interleaved flow (Section 3.2).

The paper associates two random variables with the interleaved flow
``U``:

* ``X`` -- the product state; uniform, ``p(x) = 1/|S|``;
* ``Y`` -- the observed indexed message, ranging over the indexed
  instances of the candidate message combination ``Y'``.

With ``T`` the total number of message occurrences (edges) in ``U`` and
``n(y)`` the occurrences of indexed message ``y``:

* ``p(y)      = n(y) / T``
* ``p(x | y)  = n(x, y) / n(y)`` -- fraction of the occurrences of ``y``
  that lead to state ``x``
* ``p(x, y)   = p(x | y) * p(y)``

and the gain is ``I(X; Y) = sum over x, y of p(x, y) *
ln(p(x, y) / (p(x) p(y)))`` (natural logarithm -- this is what makes the
paper's worked example come out at 1.073).

Because ``p(y)`` is normalized by the *global* occurrence count ``T``
(not by the occurrences of the candidate combination), the double sum
decomposes into **independent per-indexed-message contributions**:

``I(X; Y) = sum over y in Y of c(y)`` with
``c(y) = sum over x of (n(x,y)/T) * ln(|S| * n(x,y) / n(y))``.

:class:`InformationModel` precomputes every ``c(y)`` once per
interleaved flow, making the gain of any candidate combination an O(|Y|)
sum -- and turning Steps 1+2 of the selection method into an exact 0/1
knapsack (see :mod:`repro.selection.selector`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.interleave import InterleavedFlow
from repro.core.message import IndexedMessage, Message, MessageCombination


class InformationModel:
    """Precomputed information-gain contributions for one interleaved flow.

    Parameters
    ----------
    interleaved:
        The interleaved flow ``U`` of a usage scenario.

    Notes
    -----
    Construction is O(|transitions|); afterwards
    :meth:`gain` is O(number of indexed messages in the combination).
    """

    def __init__(self, interleaved: InterleavedFlow) -> None:
        self.interleaved = interleaved
        self.num_states = interleaved.num_states
        self.total_occurrences = interleaved.num_transitions
        if self.total_occurrences == 0:
            raise ValueError(
                f"interleaved flow {interleaved.name} has no transitions; "
                "information gain is undefined"
            )
        # n(y) and n(x, y) off the flow's per-message edge index: target
        # states are interned integer IDs and the index is built in
        # transition order, so the per-target first-encounter order --
        # and therefore every float-sum order below -- is identical to
        # the historical full transition scan
        edge_index = interleaved.edge_target_ids()
        occurrences: Dict[IndexedMessage, int] = {
            y: len(target_ids) for y, target_ids in edge_index.items()
        }
        self._occurrences: Mapping[IndexedMessage, int] = occurrences
        self._contribution: Dict[IndexedMessage, float] = {}
        for y, target_ids in edge_index.items():
            n_y = occurrences[y]
            joint: Dict[int, int] = {}
            for target_id in target_ids:
                joint[target_id] = joint.get(target_id, 0) + 1
            c = 0.0
            for n_xy in joint.values():
                p_xy = n_xy / self.total_occurrences
                c += p_xy * math.log(self.num_states * n_xy / n_y)
            self._contribution[y] = c
        # indexed instances of each plain message
        self._instances: Dict[Message, Tuple[IndexedMessage, ...]] = {}
        for y in occurrences:
            self._instances.setdefault(y.message, ())
            self._instances[y.message] += (y,)

    # ------------------------------------------------------------------
    def occurrences(self, message: IndexedMessage) -> int:
        """``n(y)`` -- edge count of indexed message *message*."""
        return self._occurrences.get(message, 0)

    def marginal(self, message: IndexedMessage) -> float:
        """``p(y) = n(y) / T``."""
        return self.occurrences(message) / self.total_occurrences

    def contribution(self, message: IndexedMessage) -> float:
        """``c(y)`` -- the additive gain contribution of one indexed
        message (zero if the message never occurs in ``U``)."""
        return self._contribution.get(message, 0.0)

    def message_contribution(self, message: Message) -> float:
        """Summed contribution of every indexed instance of *message*.

        This is the knapsack *value* of the plain message: adding
        *message* to a combination adds exactly this much gain.
        """
        return sum(
            self._contribution[y]
            for y in self._instances.get(message, ())
        )

    def gain(self, combination: Iterable[Message]) -> float:
        """``I(X; Y)`` for the candidate *combination* ``Y'``.

        The random variable ``Y`` ranges over every indexed instance of
        every message of the combination, per Section 3.2.
        """
        # sorted so the float sum has one canonical order: set iteration
        # follows randomized string hashes, and a reordered sum can
        # differ in the last ulp between processes -- enough to flip
        # rank ties downstream and break cross-process reproducibility
        unique = sorted(set(combination))
        return sum(self.message_contribution(m) for m in unique)

    def ranked_messages(self) -> Tuple[Tuple[Message, float], ...]:
        """All plain messages of ``U`` sorted by descending contribution."""
        pairs = [
            (message, self.message_contribution(message))
            for message in self._instances
        ]
        pairs.sort(key=lambda item: (-item[1], item[0].name))
        return tuple(pairs)


def mutual_information_gain(
    interleaved: InterleavedFlow, combination: Iterable[Message]
) -> float:
    """One-shot convenience wrapper around :class:`InformationModel`.

    Prefer constructing a single :class:`InformationModel` when scoring
    many combinations over the same interleaved flow.
    """
    return InformationModel(interleaved).gain(MessageCombination(combination))
