"""Flow specification coverage (Definition 7).

Every transition of a flow is labelled with a message.  For a message,
the *visible states* are the flow states reached on transitions carrying
it.  The *flow specification coverage* of a message combination is the
fraction of all flow states that are visible through at least one of
its messages.

The functions below are polymorphic over plain :class:`~repro.core.flow.Flow`
objects (labels are :class:`~repro.core.message.Message`) and
:class:`~repro.core.interleave.InterleavedFlow` objects (labels are
:class:`~repro.core.message.IndexedMessage`); an un-indexed message in
the combination covers every indexed instance of itself, exactly as in
the worked example of Section 3.3 (coverage of ``{ReqE, GntE}`` over the
two-instance interleaving is 11/15 = 0.7333).

:func:`visible_states` is the *reference* implementation: a full
O(|delta|) transition scan per query.  :func:`flow_specification_coverage`
takes the fast path when the flow exposes a ``visibility_index()`` (both
``Flow`` and ``InterleavedFlow`` do): an O(|combination|) OR of
precomputed per-message bitsets plus one popcount
(:mod:`repro.core.visibility`) -- bit-identical to the reference, which
the property tests in ``tests/core/test_visibility.py`` enforce on
randomized flows.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Set

from repro import perf
from repro.core.message import IndexedMessage, Message


def _underlying(message: object) -> Message:
    """Strip the index from an indexed message, pass plain ones through."""
    if isinstance(message, IndexedMessage):
        return message.message
    if isinstance(message, Message):
        return message
    raise TypeError(f"not a message: {message!r}")


def visible_states(flow: object, messages: Iterable[Message]) -> Set[Hashable]:
    """States of *flow* reached on transitions labelled by *messages*.

    Parameters
    ----------
    flow:
        A :class:`Flow` or :class:`InterleavedFlow` (anything exposing a
        ``transitions`` iterable of labelled edges).
    messages:
        Plain (un-indexed) messages; indexed labels in the flow match on
        their underlying message.  A *sub-group* message (one with a
        ``parent``) makes its parent's transitions visible: observing
        ``cputhreadid`` timestamps the enclosing ``dmusiidata`` message.
    """
    wanted = {(_underlying(m)) for m in messages}
    wanted_parents = {m.parent for m in wanted if m.parent is not None}
    visible: Set[Hashable] = set()
    for t in flow.transitions:  # type: ignore[attr-defined]
        label = _underlying(t.message)
        if label in wanted or label.name in wanted_parents:
            visible.add(t.target)
    return visible


def flow_specification_coverage(
    flow: object, messages: Iterable[Message]
) -> float:
    """Definition 7: ``|visible states| / |S|`` of *flow* for *messages*.

    Uses the flow's precomputed visibility bitsets when available
    (O(|messages|) instead of a full transition scan); the result is
    bit-identical either way (an integer count divided by ``|S|``).
    """
    total = flow.num_states  # type: ignore[attr-defined]
    if total == 0:
        raise ValueError("flow has no states")
    index_builder = getattr(flow, "visibility_index", None)
    if index_builder is not None:
        index = index_builder()
        unique = set(messages)
        if perf.enabled():
            perf.add("coverage_bitset_ors", len(unique))
            perf.add("coverage_queries", 1)
        return index.visible_count(unique) / total
    return len(visible_states(flow, messages)) / total
