"""Flows (Definition 1) and executions/traces (Definition 2).

A flow is a directed acyclic graph ``F = <S, S0, Sp, E, delta, Atom>``:

* ``S`` -- flow states,
* ``S0 <= S`` -- initial states,
* ``Sp <= S`` with ``Sp & Atom == {}`` -- stop states (successful
  completion),
* ``E`` -- messages labelling the transitions,
* ``delta <= S x E x S`` -- the transition relation,
* ``Atom < S`` -- atomic (mutually exclusive) states: while one flow
  instance sits in an atomic state, no concurrently executing instance
  may be in *its* atomic state.

States can be any hashable value; strings are used throughout the
library.  The class validates Definition 1 eagerly at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.message import Message, MessageCombination
from repro.core.visibility import VisibilityIndex, index_flow_visibility
from repro.errors import FlowValidationError

State = Hashable


@dataclass(frozen=True, order=True)
class Transition:
    """One element of the transition relation ``delta``: ``src --msg--> dst``."""

    source: State
    message: Message
    target: State

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} --{self.message.name}--> {self.target}"


@dataclass(frozen=True)
class Execution:
    """An execution ``rho = s0 a1 s1 ... an sn`` of a flow (Definition 2).

    ``states`` has one more element than ``messages`` and ends in a stop
    state of the flow that produced it.
    """

    states: Tuple[State, ...]
    messages: Tuple[Message, ...]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.messages) + 1:
            raise ValueError(
                "an execution alternates states and messages: expected "
                f"{len(self.messages) + 1} states, got {len(self.states)}"
            )

    @property
    def trace(self) -> Tuple[Message, ...]:
        """``trace(rho) = a1 a2 ... an`` (Definition 2)."""
        return self.messages

    def __len__(self) -> int:
        return len(self.messages)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts: List[str] = [str(self.states[0])]
        for msg, state in zip(self.messages, self.states[1:]):
            parts.append(getattr(msg, "name", str(msg)))
            parts.append(str(state))
        return " ".join(parts)


class Flow:
    """A flow DAG per Definition 1 of the paper.

    Parameters
    ----------
    name:
        Identifier of the flow (e.g. ``"PIOR"``).
    states:
        The state set ``S``.
    initial:
        Initial states ``S0``; must be a non-empty subset of ``S``.
    stop:
        Stop states ``Sp``; non-empty subset of ``S`` disjoint from
        ``Atom``.
    transitions:
        The relation ``delta`` as :class:`Transition` objects or
        ``(source, message, target)`` triples.
    atomic:
        The set ``Atom`` of atomic states (proper subset of ``S``).

    Raises
    ------
    FlowValidationError
        If any structural constraint of Definition 1 is violated,
        including acyclicity of ``delta``.
    """

    def __init__(
        self,
        name: str,
        states: Iterable[State],
        initial: Iterable[State],
        stop: Iterable[State],
        transitions: Iterable[object],
        atomic: Iterable[State] = (),
    ) -> None:
        self.name = name
        self.states: FrozenSet[State] = frozenset(states)
        self.initial: FrozenSet[State] = frozenset(initial)
        self.stop: FrozenSet[State] = frozenset(stop)
        self.atomic: FrozenSet[State] = frozenset(atomic)
        self.transitions: Tuple[Transition, ...] = tuple(
            t if isinstance(t, Transition) else Transition(*t)  # type: ignore[arg-type]
            for t in transitions
        )
        self._validate()
        self._outgoing: Dict[State, Tuple[Transition, ...]] = {}
        by_source: Dict[State, List[Transition]] = {}
        for t in self.transitions:
            by_source.setdefault(t.source, []).append(t)
        for state in self.states:
            self._outgoing[state] = tuple(by_source.get(state, ()))
        self._visibility: Optional[VisibilityIndex] = None

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.name:
            raise FlowValidationError("flow name must be non-empty")
        if not self.states:
            raise FlowValidationError(f"flow {self.name!r} has no states")
        if not self.initial:
            raise FlowValidationError(f"flow {self.name!r} has no initial state")
        if not self.initial <= self.states:
            raise FlowValidationError(
                f"flow {self.name!r}: initial states {self.initial - self.states} "
                "are not in S"
            )
        if not self.stop:
            raise FlowValidationError(f"flow {self.name!r} has no stop state")
        if not self.stop <= self.states:
            raise FlowValidationError(
                f"flow {self.name!r}: stop states {self.stop - self.states} "
                "are not in S"
            )
        if self.stop & self.atomic:
            raise FlowValidationError(
                f"flow {self.name!r}: Sp and Atom must be disjoint, both "
                f"contain {self.stop & self.atomic}"
            )
        if not self.atomic < self.states and self.atomic != frozenset():
            raise FlowValidationError(
                f"flow {self.name!r}: Atom must be a proper subset of S"
            )
        for t in self.transitions:
            if t.source not in self.states:
                raise FlowValidationError(
                    f"flow {self.name!r}: transition source {t.source!r} not in S"
                )
            if t.target not in self.states:
                raise FlowValidationError(
                    f"flow {self.name!r}: transition target {t.target!r} not in S"
                )
            if not isinstance(t.message, Message):
                raise FlowValidationError(
                    f"flow {self.name!r}: transition label {t.message!r} "
                    "is not a Message"
                )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Flows are DAGs; reject cycles with an iterative DFS."""
        adjacency: Dict[State, List[State]] = {}
        for t in self.transitions:
            adjacency.setdefault(t.source, []).append(t.target)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[State, int] = {s: WHITE for s in self.states}
        for root in self.states:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[State, Iterator[State]]] = [
                (root, iter(adjacency.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        raise FlowValidationError(
                            f"flow {self.name!r} is not a DAG: cycle through "
                            f"{child!r}"
                        )
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(adjacency.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def messages(self) -> MessageCombination:
        """The message set ``E`` of the flow."""
        return MessageCombination(t.message for t in self.transitions)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_messages(self) -> int:
        return len(self.messages)

    def outgoing(self, state: State) -> Tuple[Transition, ...]:
        """Transitions leaving *state* (empty tuple if none)."""
        return self._outgoing.get(state, ())

    def visibility_index(self) -> VisibilityIndex:
        """Per-message coverage bitsets (Definition 7 fast path),
        built once per flow on first use."""
        if self._visibility is None:
            self._visibility = index_flow_visibility(self)
        return self._visibility

    def message_by_name(self, name: str) -> Message:
        """Look up a message of ``E`` by name.

        Raises
        ------
        KeyError
            If no transition of the flow is labelled *name*.
        """
        for m in self.messages:
            if m.name == name:
                return m
        raise KeyError(f"flow {self.name!r} has no message named {name!r}")

    # ------------------------------------------------------------------
    # executions
    # ------------------------------------------------------------------
    def executions(self) -> Iterator[Execution]:
        """Enumerate every execution (initial -> stop path) of the flow.

        Flows are DAGs, so the enumeration terminates; it is lazy and
        depth-first so callers may stop early.
        """
        for start in sorted(self.initial, key=str):
            stack: List[Tuple[State, Tuple[State, ...], Tuple[Message, ...]]] = [
                (start, (start,), ())
            ]
            while stack:
                state, path_states, path_msgs = stack.pop()
                if state in self.stop:
                    yield Execution(path_states, path_msgs)
                for t in reversed(self.outgoing(state)):
                    stack.append(
                        (
                            t.target,
                            path_states + (t.target,),
                            path_msgs + (t.message,),
                        )
                    )

    def count_executions(self) -> int:
        """Number of executions, via DP over a topological order."""
        order = self.topological_order()
        paths_to_stop: Dict[State, int] = {}
        for state in reversed(order):
            total = 1 if state in self.stop else 0
            for t in self.outgoing(state):
                total += paths_to_stop.get(t.target, 0)
            paths_to_stop[state] = total
        return sum(paths_to_stop.get(s, 0) for s in self.initial)

    def topological_order(self) -> List[State]:
        """States in a topological order of ``delta`` (Kahn's algorithm)."""
        indegree: Dict[State, int] = {s: 0 for s in self.states}
        for t in self.transitions:
            indegree[t.target] += 1
        ready = sorted((s for s, d in indegree.items() if d == 0), key=str)
        order: List[State] = []
        while ready:
            state = ready.pop()
            order.append(state)
            for t in self.outgoing(state):
                indegree[t.target] -= 1
                if indegree[t.target] == 0:
                    ready.append(t.target)
        if len(order) != len(self.states):
            raise FlowValidationError(
                f"flow {self.name!r} is not a DAG"
            )  # pragma: no cover - _check_acyclic fires first
        return order

    def is_execution(self, execution: Execution) -> bool:
        """Whether *execution* is a valid execution of this flow."""
        if not execution.states or execution.states[0] not in self.initial:
            return False
        if execution.states[-1] not in self.stop:
            return False
        for src, msg, dst in zip(
            execution.states, execution.messages, execution.states[1:]
        ):
            if not any(
                t.message == msg and t.target == dst for t in self.outgoing(src)
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.name!r}, |S|={len(self.states)}, "
            f"|E|={self.num_messages}, |delta|={len(self.transitions)})"
        )


def linear_flow(
    name: str,
    state_names: Sequence[str],
    messages: Sequence[Message],
    atomic: Iterable[str] = (),
) -> Flow:
    """Build a linear (chain-shaped) flow ``s0 --m1--> s1 ... --mn--> sn``.

    Most system-level protocol flows in the paper (PIO read/write, Mondo
    interrupt, ...) are chains of request/grant/data/ack messages; this
    helper removes the boilerplate.  ``len(state_names)`` must equal
    ``len(messages) + 1``.
    """
    if len(state_names) != len(messages) + 1:
        raise FlowValidationError(
            f"linear flow {name!r}: need exactly one more state than "
            f"messages ({len(state_names)} states, {len(messages)} messages)"
        )
    transitions = [
        Transition(src, msg, dst)
        for src, msg, dst in zip(state_names, messages, state_names[1:])
    ]
    return Flow(
        name=name,
        states=state_names,
        initial=[state_names[0]],
        stop=[state_names[-1]],
        transitions=transitions,
        atomic=atomic,
    )
