"""Synchronous client for the debug service.

:class:`DebugClient` speaks the wire protocol over one TCP connection
with a configurable timeout and a retry policy -- exponential backoff
with jitter -- applied to connection failures *and* to structured
``RETRY_LATER`` backpressure replies.  Both are safe to retry: a
``RETRY_LATER`` promises the request had no effect, and feeds are
idempotent on the server (per-session chunk indices de-duplicate a
retransmit whose original response was lost).

:class:`SessionFeed` is the streaming API: it remembers every chunk it
has fed, so when the server loses the session -- an idle eviction, or
a kill-and-restart mid-stream -- the feed transparently re-opens and
replays from chunk zero.  Localization is a pure function of the fed
prefix, so replay converges to the exact same snapshot with zero data
loss; the soak test kills the server mid-stream and pins that down.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import (
    ProtocolError,
    ServerError,
    ServerUnavailableError,
)
from repro.selection.localization import LocalizationResult
from repro.server import protocol


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, plus the failure-handling
    knobs layered around it.

    ``delay(attempt)`` is ``base * 2**attempt`` capped at ``max_delay``,
    plus a uniform jitter fraction of that value -- the standard recipe
    for keeping a retrying fleet from thundering back in lockstep.

    ``timeout_s`` bounds **every** socket operation (connect, send,
    recv), not just the connect -- a stalled server turns into a
    retryable ``socket.timeout`` instead of hanging the client.  It is
    also the deadline propagated to the server with each request (see
    ``propagate_deadline``): a request the server cannot start before
    the client has given up on it is answered ``RETRY_LATER`` without
    being applied.

    The breaker fields parameterize the :class:`CircuitBreaker` every
    client layers *under* this retry loop: after
    ``breaker_threshold`` consecutive transport failures the client
    stops hammering a dead endpoint and sleeps out an exponentially
    growing cooldown (``breaker_cooldown_s`` doubling up to
    ``breaker_max_cooldown_s``) before each probe.  Probing -- rather
    than failing fast -- keeps the restart-recovery soak converging.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    timeout_s: float = 10.0
    propagate_deadline: bool = True
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 0.25
    breaker_max_cooldown_s: float = 2.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(
            self.base_delay_s * (2.0 ** attempt), self.max_delay_s
        )
        return backoff * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Consecutive-failure breaker under the backoff retry loop.

    Closed: requests flow.  After ``threshold`` consecutive transport
    failures it **opens**: before the next attempt the client sleeps
    out the remaining cooldown (load shedding -- a fleet of clients
    stops hammering a dead endpoint), then sends one half-open probe.
    A successful reply -- including a structured ``RETRY_LATER``,
    which proves the server is alive -- closes it again and resets the
    cooldown; another failure re-opens it with the cooldown doubled,
    up to ``max_cooldown_s``.

    The breaker *waits* instead of failing fast, so the retry loop's
    convergence guarantees (e.g. recovering across a server restart)
    are preserved; what it removes is the connect-storm against an
    endpoint that is known-dead.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 0.25,
        max_cooldown_s: float = 2.0,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.threshold = max(1, threshold)
        self.base_cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._sleep = sleep
        self._cooldown = cooldown_s
        self._open_until = 0.0
        self.failures = 0  # consecutive transport failures
        self.opens = 0  # lifetime open transitions
        self.state = "closed"  # closed | open | half-open

    @classmethod
    def from_policy(cls, policy: RetryPolicy) -> "CircuitBreaker":
        return cls(
            threshold=policy.breaker_threshold,
            cooldown_s=policy.breaker_cooldown_s,
            max_cooldown_s=policy.breaker_max_cooldown_s,
        )

    def before_attempt(self) -> float:
        """Sleep out any open cooldown; returns the seconds slept.
        After the wait the breaker is half-open: the caller's next
        request is the probe."""
        if self.state == "closed":
            return 0.0
        remaining = self._open_until - self._clock()
        if remaining > 0:
            self._sleep(remaining)
        self.state = "half-open"
        return max(0.0, remaining)

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures < self.threshold and self.state == "closed":
            return
        if self.state != "open":
            self.opens += 1
        self.state = "open"
        self._open_until = self._clock() + self._cooldown
        self._cooldown = min(self._cooldown * 2.0, self.max_cooldown_s)

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"
        self._cooldown = self.base_cooldown_s
        self._open_until = 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "failures": self.failures,
            "opens": self.opens,
        }


@dataclass(frozen=True)
class FeedReply:
    """Server acknowledgement of one fed chunk.

    ``next_chunk`` is the server's durable high-watermark -- the index
    it expects next.  Servers predating the store omit it (``None``).
    """

    session_id: str
    chunk_index: int
    consumed: int
    records: int
    status: str
    observed_length: int
    frontier_size: int
    duplicate: bool
    next_chunk: Optional[int] = None


@dataclass(frozen=True)
class SnapshotReply:
    """Server-side localization snapshot (batch-identical).

    ``next_chunk`` mirrors the server's chunk cursor; a feed can
    compare it against its own history to spot a server that recovered
    without the acked tail (``None`` from servers predating it).
    """

    session_id: str
    result: LocalizationResult
    status: str
    observed_length: int
    next_chunk: Optional[int] = None


@dataclass(frozen=True)
class CloseReply:
    """Final session accounting (``next_chunk`` as in
    :class:`SnapshotReply`)."""

    session_id: str
    status: str
    records: int
    result: LocalizationResult
    next_chunk: Optional[int] = None


class DebugClient:
    """One connection to a :class:`~repro.server.server.DebugServer`.

    Thread-compatible, not thread-safe: share sessions across threads
    by giving each thread its own client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._assembler = protocol.FrameAssembler()
        self._seq = 0
        self.retries = 0  # lifetime retry count (load-gen reporting)
        self.breaker = CircuitBreaker.from_policy(self.policy)

    # -- connection management -----------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.policy.timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # make the timeout explicit for every later send/recv too:
            # a server that accepts and then stalls mid-request raises
            # socket.timeout (an OSError, so the retry loop handles
            # it) instead of hanging this client forever
            sock.settimeout(self.policy.timeout_s)
            self._sock = sock
            self._assembler = protocol.FrameAssembler()
        return self._sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._sock = None

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------
    def request(
        self, frame_type: int, payload: bytes = b""
    ) -> Tuple[int, Dict[str, object]]:
        """Send one request, applying the retry policy; returns the
        decoded ``(response_type, payload)`` for OK/ERROR replies.

        Raises
        ------
        ServerUnavailableError
            After ``max_attempts`` connection failures / RETRY_LATERs.
        """
        last_reason = "no attempts made"
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(self.policy.delay(attempt - 1, self._rng))
            self.breaker.before_attempt()
            try:
                response = self._roundtrip(frame_type, payload)
            except (OSError, ProtocolError, EOFError) as exc:
                self._disconnect()
                self.breaker.record_failure()
                last_reason = f"{type(exc).__name__}: {exc}"
                continue
            if response.frame_type == protocol.RETRY_LATER:
                # backpressure is a *healthy* signal -- the server is
                # up and answering -- so it closes the breaker even
                # though the request itself must be retried
                self.breaker.record_success()
                body = protocol.decode_json(response.payload)
                last_reason = f"RETRY_LATER ({body.get('reason')})"
                continue
            self.breaker.record_success()
            return response.frame_type, protocol.decode_json(
                response.payload
            )
        raise ServerUnavailableError(
            f"request failed after {self.policy.max_attempts} attempt(s); "
            f"last: {last_reason}"
        )

    def _roundtrip(
        self, frame_type: int, payload: bytes
    ) -> protocol.WireFrame:
        sock = self._connect()
        self._seq = (self._seq + 1) & 0xFFFFFFFF
        seq = self._seq
        sock.sendall(protocol.encode_frame(frame_type, seq, payload))
        while True:
            data = sock.recv(65536)
            if not data:
                raise EOFError("connection closed by server")
            for frame in self._assembler.feed(data):
                if frame.seq == seq:
                    return frame
                # stale response from a timed-out predecessor: drop it

    def _deadline_ms(self) -> Optional[int]:
        """The relative deadline propagated with each request -- the
        same budget the socket timeout enforces locally, so the server
        never spends shard time on a request this client has already
        abandoned."""
        if not self.policy.propagate_deadline:
            return None
        return min(0xFFFFFFFF, max(1, int(self.policy.timeout_s * 1000)))

    def _with_deadline(
        self, body: Dict[str, object]
    ) -> Dict[str, object]:
        deadline_ms = self._deadline_ms()
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return body

    @staticmethod
    def _checked(
        frame_type: int, body: Dict[str, object]
    ) -> Dict[str, object]:
        if frame_type == protocol.ERROR:
            extra = {
                key: value
                for key, value in body.items()
                if key not in ("error", "message")
            }
            raise ServerError(
                str(body.get("error", "unknown")),
                str(body.get("message", "")),
                extra=extra,
            )
        return body

    # -- session API ---------------------------------------------------
    def open_session(
        self,
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        transport: str = "text",
    ) -> str:
        return str(
            self.open_session_info(
                session_id=session_id, mode=mode, transport=transport
            )["session_id"]
        )

    def open_session_info(
        self,
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        transport: str = "text",
    ) -> Dict[str, object]:
        """Open a session and return the server's full reply body.

        A durable server resuming a spilled session adds ``"resumed":
        true`` and ``"next_chunk"`` (the chunk index it expects next).
        """
        request: Dict[str, object] = {"transport": transport}
        if session_id is not None:
            request["session_id"] = session_id
        if mode is not None:
            request["mode"] = mode
        frame_type, body = self.request(
            protocol.OPEN_SESSION,
            protocol.encode_json(self._with_deadline(request)),
        )
        return self._checked(frame_type, body)

    def feed(
        self,
        session_id: str,
        chunk_index: int,
        data: bytes,
        eof: bool = False,
    ) -> FeedReply:
        frame_type, body = self.request(
            protocol.FEED_CHUNK,
            protocol.encode_feed_payload(
                session_id, chunk_index, data, eof,
                deadline_ms=self._deadline_ms(),
            ),
        )
        body = self._checked(frame_type, body)
        next_chunk = body.get("next_chunk")
        return FeedReply(
            session_id=str(body["session_id"]),
            chunk_index=int(body["chunk_index"]),  # type: ignore[arg-type]
            consumed=int(body["consumed"]),  # type: ignore[arg-type]
            records=int(body["records"]),  # type: ignore[arg-type]
            status=str(body["status"]),
            observed_length=int(body["observed_length"]),  # type: ignore[arg-type]
            frontier_size=int(body["frontier_size"]),  # type: ignore[arg-type]
            duplicate=bool(body["duplicate"]),
            next_chunk=None if next_chunk is None else int(next_chunk),  # type: ignore[arg-type]
        )

    def snapshot(self, session_id: str) -> SnapshotReply:
        frame_type, body = self.request(
            protocol.SNAPSHOT,
            protocol.encode_json(
                self._with_deadline({"session_id": session_id})
            ),
        )
        body = self._checked(frame_type, body)
        return SnapshotReply(
            session_id=str(body["session_id"]),
            result=LocalizationResult(
                consistent_paths=int(body["consistent_paths"]),  # type: ignore[arg-type]
                total_paths=int(body["total_paths"]),  # type: ignore[arg-type]
            ),
            status=str(body["status"]),
            observed_length=int(body["observed_length"]),  # type: ignore[arg-type]
            next_chunk=(
                None
                if body.get("next_chunk") is None
                else int(body["next_chunk"])  # type: ignore[arg-type]
            ),
        )

    def close_session(self, session_id: str) -> CloseReply:
        frame_type, body = self.request(
            protocol.CLOSE_SESSION,
            protocol.encode_json(
                self._with_deadline({"session_id": session_id})
            ),
        )
        body = self._checked(frame_type, body)
        return CloseReply(
            session_id=str(body["session_id"]),
            status=str(body["status"]),
            records=int(body["records"]),  # type: ignore[arg-type]
            result=LocalizationResult(
                consistent_paths=int(body["consistent_paths"]),  # type: ignore[arg-type]
                total_paths=int(body["total_paths"]),  # type: ignore[arg-type]
            ),
            next_chunk=(
                None
                if body.get("next_chunk") is None
                else int(body["next_chunk"])  # type: ignore[arg-type]
            ),
        )

    def stats(self) -> Dict[str, object]:
        frame_type, body = self.request(protocol.STATS)
        return self._checked(frame_type, body)

    def ping(self) -> Dict[str, object]:
        frame_type, body = self.request(protocol.PING)
        return self._checked(frame_type, body)


class SessionFeed:
    """A replaying streaming feed over one server session.

    Every chunk fed is remembered; when the server no longer knows the
    session (``unknown-session`` after an eviction or a restart), the
    feed re-opens it and replays history before applying the new
    chunk.  Against a durable server the replay is *incremental*: a
    resumed open reports the persisted high-watermark (``next_chunk``)
    and a ``chunk-gap`` error carries the ``expected`` index, so only
    the un-persisted tail is retransmitted.  Against an old server
    (neither field present) the feed falls back to a full replay from
    chunk zero.  Replay preserves chunk indices, so server-side
    idempotency holds across the recovery too.
    """

    def __init__(
        self,
        client: DebugClient,
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        transport: str = "text",
    ) -> None:
        self.client = client
        self.mode = mode
        self.transport = transport
        self._history: list = []  # [(bytes, eof)]
        self.session_id = client.open_session(
            session_id=session_id, mode=mode, transport=transport
        )
        self.recoveries = 0

    # ------------------------------------------------------------------
    def _replay_from(self, start: int, upto: Optional[int] = None) -> None:
        end = len(self._history) if upto is None else upto
        for index in range(start, end):
            data, eof = self._history[index]
            self.client.feed(self.session_id, index, data, eof=eof)

    def _reopen_and_replay(self) -> None:
        self.recoveries += 1
        info = self.client.open_session_info(
            session_id=self.session_id,
            mode=self.mode,
            transport=self.transport,
        )
        self.session_id = str(info["session_id"])
        start = 0
        if info.get("resumed"):
            # a durable server revived the session; replay only the
            # chunks past its persisted high-watermark
            start = min(
                int(info.get("next_chunk", 0)), len(self._history)  # type: ignore[arg-type]
            )
        self._replay_from(start)

    def _recovering(self, operation, replay_upto: Optional[int] = None):
        try:
            return operation()
        except ServerError as exc:
            if exc.code == "chunk-gap" and "expected" in exc.extra:
                # the server is durable but lost the tail (e.g. a
                # crash truncated un-synced WAL records): retransmit
                # from the index it reports instead of reopening --
                # stopping short of the in-flight chunk, which the
                # retried operation itself delivers
                self.recoveries += 1
                self._replay_from(
                    int(exc.extra["expected"]), upto=replay_upto  # type: ignore[arg-type]
                )
                return operation()
            if exc.code != "unknown-session":
                raise
        self._reopen_and_replay()
        return operation()

    # ------------------------------------------------------------------
    def feed(self, data: bytes, eof: bool = False) -> FeedReply:
        index = len(self._history)
        self._history.append((data, eof))
        return self._recovering(
            lambda: self.client.feed(self.session_id, index, data, eof=eof),
            replay_upto=index,
        )

    def feed_chunks(
        self, chunks: Iterable[bytes], eof: bool = True
    ) -> Tuple[FeedReply, ...]:
        """Feed every chunk in order (``eof`` marks the last one)."""
        materialized = list(chunks)
        replies = []
        for i, chunk in enumerate(materialized):
            is_last = eof and i == len(materialized) - 1
            replies.append(self.feed(chunk, eof=is_last))
        return tuple(replies)

    def resync(self, start: int) -> None:
        """Retransmit ``history[start:]`` -- heals a server that lost
        the acked tail (e.g. it recovered from a crash on a shard that
        had degraded to memory-only durability)."""
        self.recoveries += 1
        self._replay_from(start)

    def _short_cursor(self, next_chunk: Optional[int]) -> Optional[int]:
        """The replay start if the server's cursor is behind our
        history, else ``None`` (also ``None`` for old servers)."""
        if next_chunk is not None and next_chunk < len(self._history):
            return next_chunk
        return None

    def snapshot(self) -> SnapshotReply:
        reply = self._recovering(
            lambda: self.client.snapshot(self.session_id)
        )
        start = self._short_cursor(reply.next_chunk)
        if start is None:
            return reply
        # the server answered, but from a state missing chunks it had
        # acked before a crash: replay the tail and snapshot again
        self.resync(start)
        return self._recovering(
            lambda: self.client.snapshot(self.session_id)
        )

    def close(self) -> CloseReply:
        reply = self._recovering(
            lambda: self.client.close_session(self.session_id)
        )
        start = self._short_cursor(reply.next_chunk)
        if start is None:
            return reply
        # the close landed on a truncated recovery; the session is
        # retired now, so heal by reopening, replaying everything, and
        # closing again (chunk indices are preserved, so a durable
        # tail that *did* survive is deduplicated server-side)
        self._reopen_and_replay()
        return self._recovering(
            lambda: self.client.close_session(self.session_id)
        )
