"""Synchronous client for the debug service.

:class:`DebugClient` speaks the wire protocol over one TCP connection
with a configurable timeout and a retry policy -- exponential backoff
with jitter -- applied to connection failures *and* to structured
``RETRY_LATER`` backpressure replies.  Both are safe to retry: a
``RETRY_LATER`` promises the request had no effect, and feeds are
idempotent on the server (per-session chunk indices de-duplicate a
retransmit whose original response was lost).

:class:`SessionFeed` is the streaming API: it remembers every chunk it
has fed, so when the server loses the session -- an idle eviction, or
a kill-and-restart mid-stream -- the feed transparently re-opens and
replays from chunk zero.  Localization is a pure function of the fed
prefix, so replay converges to the exact same snapshot with zero data
loss; the soak test kills the server mid-stream and pins that down.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import (
    ProtocolError,
    ServerError,
    ServerUnavailableError,
)
from repro.selection.localization import LocalizationResult
from repro.server import protocol


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter.

    ``delay(attempt)`` is ``base * 2**attempt`` capped at ``max_delay``,
    plus a uniform jitter fraction of that value -- the standard recipe
    for keeping a retrying fleet from thundering back in lockstep.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    timeout_s: float = 10.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(
            self.base_delay_s * (2.0 ** attempt), self.max_delay_s
        )
        return backoff * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class FeedReply:
    """Server acknowledgement of one fed chunk.

    ``next_chunk`` is the server's durable high-watermark -- the index
    it expects next.  Servers predating the store omit it (``None``).
    """

    session_id: str
    chunk_index: int
    consumed: int
    records: int
    status: str
    observed_length: int
    frontier_size: int
    duplicate: bool
    next_chunk: Optional[int] = None


@dataclass(frozen=True)
class SnapshotReply:
    """Server-side localization snapshot (batch-identical)."""

    session_id: str
    result: LocalizationResult
    status: str
    observed_length: int


@dataclass(frozen=True)
class CloseReply:
    """Final session accounting."""

    session_id: str
    status: str
    records: int
    result: LocalizationResult


class DebugClient:
    """One connection to a :class:`~repro.server.server.DebugServer`.

    Thread-compatible, not thread-safe: share sessions across threads
    by giving each thread its own client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._assembler = protocol.FrameAssembler()
        self._seq = 0
        self.retries = 0  # lifetime retry count (load-gen reporting)

    # -- connection management -----------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.policy.timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._assembler = protocol.FrameAssembler()
        return self._sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._sock = None

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------
    def request(
        self, frame_type: int, payload: bytes = b""
    ) -> Tuple[int, Dict[str, object]]:
        """Send one request, applying the retry policy; returns the
        decoded ``(response_type, payload)`` for OK/ERROR replies.

        Raises
        ------
        ServerUnavailableError
            After ``max_attempts`` connection failures / RETRY_LATERs.
        """
        last_reason = "no attempts made"
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(self.policy.delay(attempt - 1, self._rng))
            try:
                response = self._roundtrip(frame_type, payload)
            except (OSError, ProtocolError, EOFError) as exc:
                self._disconnect()
                last_reason = f"{type(exc).__name__}: {exc}"
                continue
            if response.frame_type == protocol.RETRY_LATER:
                body = protocol.decode_json(response.payload)
                last_reason = f"RETRY_LATER ({body.get('reason')})"
                continue
            return response.frame_type, protocol.decode_json(
                response.payload
            )
        raise ServerUnavailableError(
            f"request failed after {self.policy.max_attempts} attempt(s); "
            f"last: {last_reason}"
        )

    def _roundtrip(
        self, frame_type: int, payload: bytes
    ) -> protocol.WireFrame:
        sock = self._connect()
        self._seq = (self._seq + 1) & 0xFFFFFFFF
        seq = self._seq
        sock.sendall(protocol.encode_frame(frame_type, seq, payload))
        while True:
            data = sock.recv(65536)
            if not data:
                raise EOFError("connection closed by server")
            for frame in self._assembler.feed(data):
                if frame.seq == seq:
                    return frame
                # stale response from a timed-out predecessor: drop it

    @staticmethod
    def _checked(
        frame_type: int, body: Dict[str, object]
    ) -> Dict[str, object]:
        if frame_type == protocol.ERROR:
            extra = {
                key: value
                for key, value in body.items()
                if key not in ("error", "message")
            }
            raise ServerError(
                str(body.get("error", "unknown")),
                str(body.get("message", "")),
                extra=extra,
            )
        return body

    # -- session API ---------------------------------------------------
    def open_session(
        self,
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        transport: str = "text",
    ) -> str:
        return str(
            self.open_session_info(
                session_id=session_id, mode=mode, transport=transport
            )["session_id"]
        )

    def open_session_info(
        self,
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        transport: str = "text",
    ) -> Dict[str, object]:
        """Open a session and return the server's full reply body.

        A durable server resuming a spilled session adds ``"resumed":
        true`` and ``"next_chunk"`` (the chunk index it expects next).
        """
        request: Dict[str, object] = {"transport": transport}
        if session_id is not None:
            request["session_id"] = session_id
        if mode is not None:
            request["mode"] = mode
        frame_type, body = self.request(
            protocol.OPEN_SESSION, protocol.encode_json(request)
        )
        return self._checked(frame_type, body)

    def feed(
        self,
        session_id: str,
        chunk_index: int,
        data: bytes,
        eof: bool = False,
    ) -> FeedReply:
        frame_type, body = self.request(
            protocol.FEED_CHUNK,
            protocol.encode_feed_payload(session_id, chunk_index, data, eof),
        )
        body = self._checked(frame_type, body)
        next_chunk = body.get("next_chunk")
        return FeedReply(
            session_id=str(body["session_id"]),
            chunk_index=int(body["chunk_index"]),  # type: ignore[arg-type]
            consumed=int(body["consumed"]),  # type: ignore[arg-type]
            records=int(body["records"]),  # type: ignore[arg-type]
            status=str(body["status"]),
            observed_length=int(body["observed_length"]),  # type: ignore[arg-type]
            frontier_size=int(body["frontier_size"]),  # type: ignore[arg-type]
            duplicate=bool(body["duplicate"]),
            next_chunk=None if next_chunk is None else int(next_chunk),  # type: ignore[arg-type]
        )

    def snapshot(self, session_id: str) -> SnapshotReply:
        frame_type, body = self.request(
            protocol.SNAPSHOT,
            protocol.encode_json({"session_id": session_id}),
        )
        body = self._checked(frame_type, body)
        return SnapshotReply(
            session_id=str(body["session_id"]),
            result=LocalizationResult(
                consistent_paths=int(body["consistent_paths"]),  # type: ignore[arg-type]
                total_paths=int(body["total_paths"]),  # type: ignore[arg-type]
            ),
            status=str(body["status"]),
            observed_length=int(body["observed_length"]),  # type: ignore[arg-type]
        )

    def close_session(self, session_id: str) -> CloseReply:
        frame_type, body = self.request(
            protocol.CLOSE_SESSION,
            protocol.encode_json({"session_id": session_id}),
        )
        body = self._checked(frame_type, body)
        return CloseReply(
            session_id=str(body["session_id"]),
            status=str(body["status"]),
            records=int(body["records"]),  # type: ignore[arg-type]
            result=LocalizationResult(
                consistent_paths=int(body["consistent_paths"]),  # type: ignore[arg-type]
                total_paths=int(body["total_paths"]),  # type: ignore[arg-type]
            ),
        )

    def stats(self) -> Dict[str, object]:
        frame_type, body = self.request(protocol.STATS)
        return self._checked(frame_type, body)

    def ping(self) -> Dict[str, object]:
        frame_type, body = self.request(protocol.PING)
        return self._checked(frame_type, body)


class SessionFeed:
    """A replaying streaming feed over one server session.

    Every chunk fed is remembered; when the server no longer knows the
    session (``unknown-session`` after an eviction or a restart), the
    feed re-opens it and replays history before applying the new
    chunk.  Against a durable server the replay is *incremental*: a
    resumed open reports the persisted high-watermark (``next_chunk``)
    and a ``chunk-gap`` error carries the ``expected`` index, so only
    the un-persisted tail is retransmitted.  Against an old server
    (neither field present) the feed falls back to a full replay from
    chunk zero.  Replay preserves chunk indices, so server-side
    idempotency holds across the recovery too.
    """

    def __init__(
        self,
        client: DebugClient,
        session_id: Optional[str] = None,
        mode: Optional[str] = None,
        transport: str = "text",
    ) -> None:
        self.client = client
        self.mode = mode
        self.transport = transport
        self._history: list = []  # [(bytes, eof)]
        self.session_id = client.open_session(
            session_id=session_id, mode=mode, transport=transport
        )
        self.recoveries = 0

    # ------------------------------------------------------------------
    def _replay_from(self, start: int, upto: Optional[int] = None) -> None:
        end = len(self._history) if upto is None else upto
        for index in range(start, end):
            data, eof = self._history[index]
            self.client.feed(self.session_id, index, data, eof=eof)

    def _reopen_and_replay(self) -> None:
        self.recoveries += 1
        info = self.client.open_session_info(
            session_id=self.session_id,
            mode=self.mode,
            transport=self.transport,
        )
        self.session_id = str(info["session_id"])
        start = 0
        if info.get("resumed"):
            # a durable server revived the session; replay only the
            # chunks past its persisted high-watermark
            start = min(
                int(info.get("next_chunk", 0)), len(self._history)  # type: ignore[arg-type]
            )
        self._replay_from(start)

    def _recovering(self, operation, replay_upto: Optional[int] = None):
        try:
            return operation()
        except ServerError as exc:
            if exc.code == "chunk-gap" and "expected" in exc.extra:
                # the server is durable but lost the tail (e.g. a
                # crash truncated un-synced WAL records): retransmit
                # from the index it reports instead of reopening --
                # stopping short of the in-flight chunk, which the
                # retried operation itself delivers
                self.recoveries += 1
                self._replay_from(
                    int(exc.extra["expected"]), upto=replay_upto  # type: ignore[arg-type]
                )
                return operation()
            if exc.code != "unknown-session":
                raise
        self._reopen_and_replay()
        return operation()

    # ------------------------------------------------------------------
    def feed(self, data: bytes, eof: bool = False) -> FeedReply:
        index = len(self._history)
        self._history.append((data, eof))
        return self._recovering(
            lambda: self.client.feed(self.session_id, index, data, eof=eof),
            replay_upto=index,
        )

    def feed_chunks(
        self, chunks: Iterable[bytes], eof: bool = True
    ) -> Tuple[FeedReply, ...]:
        """Feed every chunk in order (``eof`` marks the last one)."""
        materialized = list(chunks)
        replies = []
        for i, chunk in enumerate(materialized):
            is_last = eof and i == len(materialized) - 1
            replies.append(self.feed(chunk, eof=is_last))
        return tuple(replies)

    def snapshot(self) -> SnapshotReply:
        return self._recovering(
            lambda: self.client.snapshot(self.session_id)
        )

    def close(self) -> CloseReply:
        return self._recovering(
            lambda: self.client.close_session(self.session_id)
        )
