"""The asyncio debug server: sharded sessions behind the wire protocol.

Architecture::

                    +-- shard 0: queue -> 1-thread executor -> SessionManager
    TCP conns ------+-- shard 1: queue -> 1-thread executor -> SessionManager
     (asyncio)      +-- ...          (consistent-hash routed by session id)

* **Sharding** -- every session id maps onto one shard via a
  consistent-hash ring (:class:`HashRing`), so all of a session's
  operations serialize through that shard's single worker thread:
  per-session ordering holds with zero per-request locking in the
  server itself (the :class:`~repro.stream.session.SessionManager`'s
  own locks cover the cross-thread idle sweep).
* **Admission control** -- three independent limits answer overload
  with a structured ``RETRY_LATER`` frame instead of stalling or
  dropping accepted work: a global open-session cap, a per-shard queue
  depth cap, and a per-connection in-flight cap.  A ``RETRY_LATER``
  always means the request had no effect.
* **Idle eviction** -- a sweeper task periodically retires sessions
  nobody fed (running on each shard's executor, so it serializes with
  that shard's operations).
* **Graceful drain** -- SIGINT/SIGTERM stop the accept loop, let every
  queued operation finish and its response flush, then retire the
  remaining sessions through their managers (telemetry intact).
* **Durability** (opt-in via ``ServerConfig.data_dir``) -- each shard
  owns a :class:`repro.store.SessionStore`: feeds are written to a
  CRC-framed WAL *before* they are applied (an acked chunk survives a
  crash), frontier snapshots bound replay, idle eviction spills state
  instead of discarding it, and startup recovers every session
  bit-identical to an uninterrupted run.  Without a data directory the
  server behaves exactly as before.

The metrics plane (:mod:`repro.server.metrics`) is wired in here:
request/feed counters and latency histograms update on the serving
path; per-shard manager stats, runtime-cache hit rates, ``repro.perf``
stage counters, and compressed-transport ratios are sampled at scrape
time -- over the ``STATS`` frame or the plain-HTTP
``--metrics-port`` listener.
"""

from __future__ import annotations

import asyncio
import base64
import bisect
import codecs
import json
import signal
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro import perf
from repro.core.interleave import InterleavedFlow
from repro.core.message import Message
from repro.errors import (
    ProtocolError,
    SelectionError,
    StoreError,
    StoreWriteError,
    StreamError,
)
from repro.selection import kernels
from repro.server import protocol
from repro.server.metrics import MetricsRegistry, runtime_cache_collector
from repro.store import wal as wal_mod
from repro.store.inspect import (
    META_FORMAT,
    read_meta,
    shard_directory,
    write_meta,
)
from repro.store.store import SessionStore
from repro.stream.ingest import CompressedTraceIngester, IncrementalTraceParser
from repro.stream.session import SessionLimits, SessionManager

#: Session transports: text trace-file chunks, or framed compressed
#: bitstream chunks (decoded by :class:`CompressedTraceIngester`).
TRANSPORTS = ("text", "ctrace")


@dataclass(frozen=True)
class ServeContext:
    """What the server serves: one usage scenario's analysis context."""

    name: str
    interleaved: InterleavedFlow
    traced: Tuple[Message, ...]
    catalog: Mapping[str, Message]
    mode: str = "prefix"
    max_frontier: Optional[int] = 4096

    @classmethod
    def from_scenario(
        cls,
        number: int,
        instances: int = 1,
        buffer_width: int = 32,
        mode: str = "prefix",
        max_frontier: Optional[int] = 4096,
    ) -> "ServeContext":
        """Build the context for a T2 scenario (cached selection)."""
        from repro.experiments.common import scenario_selection

        bundle = scenario_selection(
            number, instances=instances, buffer_width=buffer_width
        )
        sc = bundle.scenario
        return cls(
            name=sc.name,
            interleaved=sc.interleaved(),
            traced=tuple(bundle.with_packing.traced),
            catalog=dict(sc.catalog.messages),
            mode=mode,
            max_frontier=max_frontier,
        )

    @classmethod
    def from_components(
        cls,
        interleaved: InterleavedFlow,
        traced: Tuple[Message, ...],
        catalog: Optional[Mapping[str, Message]] = None,
        name: str = "custom",
        mode: str = "prefix",
        max_frontier: Optional[int] = 4096,
    ) -> "ServeContext":
        if catalog is None:
            catalog = {m.name: m for m in interleaved.messages}
        return cls(
            name=name,
            interleaved=interleaved,
            traced=tuple(traced),
            catalog=dict(catalog),
            mode=mode,
            max_frontier=max_frontier,
        )


@dataclass(frozen=True)
class ServerConfig:
    """Operational knobs of one :class:`DebugServer`."""

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    max_sessions: int = 64
    max_queue_depth: int = 64
    max_inflight: int = 32
    max_payload_bytes: int = protocol.DEFAULT_MAX_PAYLOAD
    idle_timeout_s: float = 300.0
    idle_sweep_s: float = 10.0
    retry_after_s: float = 0.05
    metrics_port: Optional[int] = None
    #: Durability (repro.store): a data directory enables the per-shard
    #: write-ahead log + frontier snapshots; ``None`` keeps the server
    #: purely in-memory (the pre-store behavior, bit for bit).
    data_dir: Optional[str] = None
    fsync: str = "interval"
    fsync_interval_s: float = 0.05
    snapshot_every: int = 256
    segment_bytes: int = wal_mod.DEFAULT_SEGMENT_BYTES
    #: Consecutive poisonous feeds (apply-time crashes that are not
    #: ordinary stream errors) a session survives before the server
    #: quarantines it -- retiring it with a structured
    #: ``session-quarantined`` error instead of letting a client retry
    #: a payload that can never succeed.
    quarantine_after: int = 3


class HashRing:
    """Consistent hashing of session ids onto shard indices.

    Each shard owns ``replicas`` points on a 32-bit ring (CRC-32 of a
    shard-replica label -- deterministic across processes and hash
    seeds); a session id lands on the first point at or after its own
    hash.  Adding a shard therefore remaps only ~1/N of the id space,
    and the spread is even without any coordination.
    """

    def __init__(self, shards: int, replicas: int = 32) -> None:
        if shards < 1:
            raise StreamError(f"shards must be >= 1, got {shards}")
        points: List[Tuple[int, int]] = []
        for index in range(shards):
            for replica in range(replicas):
                label = f"shard-{index}#{replica}".encode("ascii")
                points.append((zlib.crc32(label) & 0xFFFFFFFF, index))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, session_id: str) -> int:
        key = zlib.crc32(session_id.encode("utf-8")) & 0xFFFFFFFF
        position = bisect.bisect_left(self._hashes, key)
        if position == len(self._hashes):
            position = 0
        return self._shards[position]


class _ServerSession:
    """Server-side per-session state outside the manager: the ingest
    pipeline and the idempotency cursor (touched only by the owning
    shard's worker thread)."""

    __slots__ = (
        "session_id", "transport", "parser", "ingester", "decoder",
        "next_chunk", "records", "wire_bytes", "raw_bits", "last_status",
        "observed_length", "frontier_size", "failures",
    )

    def __init__(
        self,
        session_id: str,
        transport: str,
        catalog: Mapping[str, Message],
    ) -> None:
        self.session_id = session_id
        self.transport = transport
        self.parser = IncrementalTraceParser(catalog)
        self.ingester = (
            CompressedTraceIngester(catalog, parser=self.parser)
            if transport == "ctrace"
            else None
        )
        # chunk payloads may split a multi-byte character; decode
        # incrementally so a torn codepoint survives the chunk boundary
        self.decoder = codecs.getincrementaldecoder("utf-8")("replace")
        self.next_chunk = 0
        self.records = 0
        self.wire_bytes = 0
        self.raw_bits = 0
        self.last_status = "active"
        self.observed_length = 0
        self.frontier_size = 0
        #: Consecutive apply-time crashes (poison payloads); reset on
        #: every successful feed, compared against
        #: ``ServerConfig.quarantine_after``.  Deliberately transient:
        #: a restart wipes the strike count, not the session.
        self.failures = 0

    def capture(self, manager_state: dict) -> dict:
        """Merge the manager's durable export with this wrapper's own
        state into one JSON-able snapshot entry."""
        state = dict(manager_state)
        buffered, flag = self.decoder.getstate()
        state.update(
            transport=self.transport,
            next_chunk=self.next_chunk,
            wire_bytes=self.wire_bytes,
            raw_bits=self.raw_bits,
            last_status=self.last_status,
            observed_length=self.observed_length,
            frontier_size=self.frontier_size,
            text_decoder=[
                base64.b64encode(buffered).decode("ascii"), flag
            ],
        )
        if self.transport == "ctrace":
            state["ingester"] = self.ingester.export_state()
        else:
            state["parser"] = self.parser.export_state()
        return state

    @classmethod
    def restore(
        cls, state: dict, catalog: Mapping[str, Message]
    ) -> "_ServerSession":
        """The inverse of :meth:`capture` (the manager side is restored
        separately via :meth:`SessionManager.adopt`)."""
        session = cls(
            str(state["session_id"]),
            str(state.get("transport", "text")),
            catalog,
        )
        session.next_chunk = int(state.get("next_chunk", 0))
        session.records = int(state.get("records", 0))
        session.wire_bytes = int(state.get("wire_bytes", 0))
        session.raw_bits = int(state.get("raw_bits", 0))
        session.last_status = str(state.get("last_status", "active"))
        session.observed_length = int(state.get("observed_length", 0))
        session.frontier_size = int(state.get("frontier_size", 0))
        buffered, flag = state.get("text_decoder", ["", 0])
        session.decoder.setstate(
            (base64.b64decode(buffered), int(flag))
        )
        if session.transport == "ctrace":
            session.ingester.restore_state(state["ingester"])
        else:
            session.parser.restore_state(state["parser"])
        return session


class _Shard:
    """One shard: manager + session wrappers + serialized work lane."""

    def __init__(
        self, index: int, context: ServeContext, config: ServerConfig
    ) -> None:
        self.index = index
        self.manager = SessionManager(
            context.interleaved,
            context.traced,
            mode=context.mode,
            limits=SessionLimits(
                max_sessions=config.max_sessions,
                max_frontier=context.max_frontier,
                idle_timeout_s=config.idle_timeout_s,
            ),
        )
        # every shard owns a manager over the same scenario; warming at
        # construction resolves the compiled localization tables
        # through the content-addressed registry before the listener
        # accepts -- the first shard compiles, every later shard gets
        # the same read-only tables back by fingerprint
        self.manager.warm()
        self.sessions: Dict[str, _ServerSession] = {}
        self.queue: "asyncio.Queue[Tuple[Callable[[], Tuple[int, bytes]], asyncio.Future]]" = (
            asyncio.Queue()
        )
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard{index}"
        )
        self.store: Optional[SessionStore] = None
        if config.data_dir is not None:
            self.store = SessionStore(
                shard_directory(config.data_dir, index),
                fsync=config.fsync,
                fsync_interval_s=config.fsync_interval_s,
                snapshot_every=config.snapshot_every,
                segment_bytes=config.segment_bytes,
            )
        #: Set when a physical store write fails: the shard keeps
        #: serving from memory but stops promising durability (and
        #: stops touching the broken store), with an alert raised --
        #: explicit degradation instead of a crash loop.
        self.degraded = False
        self.degraded_reason: Optional[str] = None

    @property
    def durable(self) -> bool:
        """Whether this shard still honors the acked-means-durable
        contract (a store is attached and no write has failed)."""
        return self.store is not None and not self.degraded

    def sweep(self) -> Tuple[str, ...]:
        """Evict idle sessions and drop their ingest state (runs on the
        shard executor, serialized with regular operations).  With a
        store attached, evicted sessions are spilled -- their full
        state is parked in the store and folded into the next snapshot
        instead of being lost."""
        spill = None
        if self.durable:
            def spill(manager_state: dict) -> None:
                wrapper = self.sessions.get(manager_state["session_id"])
                if wrapper is not None:
                    self.store.spill(wrapper.capture(manager_state))
        evicted = self.manager.evict_idle(spill=spill)
        live = set(self.manager.session_ids())
        for sid in list(self.sessions):
            if sid not in live:
                del self.sessions[sid]
        return evicted

    def capture_states(self) -> List[dict]:
        """Every live session's durable state, id-sorted (snapshot
        path; runs on the shard executor)."""
        states: List[dict] = []
        for sid in self.manager.session_ids():
            wrapper = self.sessions.get(sid)
            if wrapper is None:  # pragma: no cover - defensive
                continue
            try:
                manager_state = self.manager.export_session(sid)
            except StreamError:  # pragma: no cover - raced retirement
                continue
            states.append(wrapper.capture(manager_state))
        return sorted(states, key=lambda s: s["session_id"])

    def close_all(self) -> int:
        """Retire every remaining session (drain path)."""
        closed = 0
        for sid in self.manager.session_ids():
            try:
                self.manager.close(sid)
                closed += 1
            except StreamError:
                pass
        self.sessions.clear()
        return closed

    def stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"shard": self.index}
        payload.update(self.manager.stats())
        payload["queue_depth"] = self.queue.qsize()
        payload["degraded"] = self.degraded
        return payload


class _Connection:
    """Per-connection bookkeeping (owned by the event loop)."""

    __slots__ = ("writer", "write_lock", "inflight", "assembler")

    def __init__(self, writer: asyncio.StreamWriter, max_payload: int) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight = 0
        self.assembler = protocol.FrameAssembler(max_payload=max_payload)


class DebugServer:
    """The networked post-silicon debug service (one scenario)."""

    def __init__(
        self,
        context: ServeContext,
        config: Optional[ServerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.context = context
        self.config = config if config is not None else ServerConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ring = HashRing(self.config.shards)
        self._shards: List[_Shard] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._consumers: List[asyncio.Task] = []
        self._sweeper: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._draining = False
        self._stopped = False
        self._started_at = 0.0
        self._session_counter = 0
        self._fingerprint: Optional[str] = None
        self._recovery: Dict[str, object] = {}
        #: Structured operational alerts (WAL degradation, snapshot
        #: failures, quarantines) -- newest last, bounded, served over
        #: the health collector so operators see them on STATS/metrics.
        self._alerts: List[Dict[str, object]] = []
        self._perf = perf.PerfCounters()
        self.host = self.config.host
        self.port = self.config.port
        self.metrics_port = self.config.metrics_port
        self._wire_counters()

    # -- metrics wiring ------------------------------------------------
    def _wire_counters(self) -> None:
        reg = self.registry
        self._c_requests = reg.counter("requests_total")
        self._c_feeds = reg.counter("feeds_total")
        self._c_records = reg.counter("records_fed_total")
        self._c_opens = reg.counter("opens_total")
        self._c_closes = reg.counter("closes_total")
        self._c_retry = reg.counter("retry_later_total")
        self._c_errors = reg.counter("error_replies_total")
        self._c_protocol = reg.counter("protocol_errors_total")
        self._c_connections = reg.counter("connections_total")
        self._c_bytes_in = reg.counter("wire_bytes_in")
        self._c_bytes_out = reg.counter("wire_bytes_out")
        self._c_cbytes = reg.counter("compressed_wire_bytes")
        self._c_craw = reg.counter("compressed_raw_bits")
        self._c_deadline = reg.counter("deadline_exceeded_total")
        self._c_degraded = reg.counter("wal_degraded_total")
        self._c_snapfail = reg.counter("snapshot_failures_total")
        self._c_quarantined = reg.counter("sessions_quarantined_total")
        self._h_feed = reg.histogram("feed_latency_s")
        self._h_request = reg.histogram("request_latency_s")
        self._h_wal = reg.histogram("wal_append_s")
        reg.add_collector("server", self._server_stats)
        reg.add_collector("health", self._health)
        reg.add_collector("store", self._store_stats)
        reg.add_collector(
            "shards", lambda: {"shards": [s.stats() for s in self._shards]}
        )
        reg.add_collector("runtime_cache", runtime_cache_collector)
        reg.add_collector(
            "localize_tables",
            lambda: kernels.default_registry().stats(),
        )
        reg.add_collector("perf", self._perf.as_dict)

    def _server_stats(self) -> Dict[str, object]:
        wire_bytes = self._c_cbytes.value
        raw_bits = self._c_craw.value
        return {
            "scenario": self.context.name,
            "mode": self.context.mode,
            "host": self.host,
            "port": self.port,
            "shards": len(self._shards),
            "uptime_s": round(
                time.monotonic() - self._started_at if self._started_at else 0.0,
                3,
            ),
            "draining": self._draining,
            "open_connections": len(self._connections),
            "open_sessions": sum(len(s.manager) for s in self._shards),
            "max_sessions": self.config.max_sessions,
            "compression_ratio": (
                round(raw_bits / (wire_bytes * 8), 4) if wire_bytes else 0.0
            ),
        }

    def _health(self) -> Dict[str, object]:
        """Readiness summary: ``ok`` serves durably, ``degraded``
        serves with at least one shard in memory-only mode,
        ``draining`` refuses new work."""
        degraded = [s.index for s in self._shards if s.degraded]
        if self._draining:
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "degraded_shards": degraded,
            "alerts": [dict(alert) for alert in self._alerts],
        }

    def _alert(self, kind: str, **fields: object) -> None:
        """Record one structured operational alert (bounded buffer)."""
        alert: Dict[str, object] = {"kind": kind}
        alert.update(fields)
        self._alerts.append(alert)
        del self._alerts[:-64]

    @property
    def recovery_info(self) -> Dict[str, object]:
        """Summary of the last start's recovery (empty without a
        store): sessions restored, records replayed, wall time."""
        return dict(self._recovery)

    def _store_stats(self) -> Dict[str, object]:
        if self.config.data_dir is None:
            return {"enabled": False}
        per_shard = [
            dict(shard.store.stats(), shard=shard.index)
            for shard in self._shards
            if shard.store is not None
        ]
        totals: Dict[str, object] = {}
        for stats in per_shard:
            for key, value in stats.items():
                if key == "shard" or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        return {
            "enabled": True,
            "data_dir": self.config.data_dir,
            "fsync": self.config.fsync,
            "snapshot_every": self.config.snapshot_every,
            "fingerprint": self._fingerprint,
            "recovery": dict(self._recovery),
            "totals": totals,
            "shards": per_shard,
        }

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, start shard consumers and the sweeper; returns the
        bound ``(host, port)`` (port 0 resolves to an ephemeral one)."""
        if self._server is not None:
            raise StreamError("server already started")
        loop = asyncio.get_running_loop()
        self._shards = [
            _Shard(i, self.context, self.config)
            for i in range(self.config.shards)
        ]
        # every shard resolved the same compiled tables by content hash;
        # the fingerprint ties durable state to this exact scenario
        self._fingerprint = (
            self._shards[0].manager.shared_localizer.fingerprint()
        )
        if self.config.data_dir is not None:
            try:
                self._recover_from_store()
            except BaseException:
                for shard in self._shards:
                    shard.executor.shutdown(wait=False)
                raise
        perf.activate(self._perf)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._consumers = [
            loop.create_task(self._consume(shard)) for shard in self._shards
        ]
        self._sweeper = loop.create_task(self._sweep_loop())
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics,
                self.config.host,
                self.config.metrics_port,
            )
            msock = self._metrics_server.sockets[0].getsockname()
            self.metrics_port = msock[1]
        self._started_at = time.monotonic()
        return self.host, self.port

    async def stop(self, drain: bool = True, abort: bool = False) -> None:
        """Stop serving.

        ``drain=True`` (the graceful path) finishes every queued
        operation, flushes its response, and retires remaining sessions
        through their managers.  ``abort=True`` simulates a crash:
        connections are torn down immediately and queued work is
        dropped -- the client-retry soak test drives this path.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if abort:
            for connection in list(self._connections):
                transport = connection.writer.transport
                if transport is not None:
                    transport.abort()
        elif drain:
            for shard in self._shards:
                try:
                    await asyncio.wait_for(shard.queue.join(), timeout=30.0)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    pass
        if self._sweeper is not None:
            self._sweeper.cancel()
        for task in self._consumers:
            task.cancel()
        await asyncio.gather(
            *self._consumers,
            *((self._sweeper,) if self._sweeper else ()),
            return_exceptions=True,
        )
        if not abort:
            loop = asyncio.get_running_loop()
            for shard in self._shards:
                if shard.durable:
                    # durable shutdown: checkpoint every live session
                    # (and the spill map) instead of retiring them --
                    # they come back on the next start
                    await loop.run_in_executor(
                        shard.executor, self._final_snapshot, shard
                    )
                else:
                    # memory-only (or degraded -- its store cannot be
                    # trusted to take another write) shards just retire
                    await loop.run_in_executor(
                        shard.executor, shard.close_all
                    )
        for connection in list(self._connections):
            try:
                connection.writer.close()
            except Exception:  # pragma: no cover - defensive
                pass
        for shard in self._shards:
            shard.executor.shutdown(wait=True)
        perf.deactivate(self._perf)

    async def run(
        self,
        duration: Optional[float] = None,
        on_ready: Optional[Callable[["DebugServer"], None]] = None,
    ) -> None:
        """Start, serve until SIGINT/SIGTERM (or *duration* seconds),
        then drain gracefully."""
        await self.start()
        if on_ready is not None:
            on_ready(self)
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        installed: List[signal.Signals] = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            if duration is None:
                await stop_event.wait()
            else:
                try:
                    await asyncio.wait_for(stop_event.wait(), duration)
                except asyncio.TimeoutError:
                    pass
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop(drain=True)

    # -- background tasks ----------------------------------------------
    async def _consume(self, shard: _Shard) -> None:
        loop = asyncio.get_running_loop()
        while True:
            fn, future = await shard.queue.get()
            try:
                result = await loop.run_in_executor(shard.executor, fn)
            except Exception as exc:  # noqa: BLE001 - reply, don't die
                result = (
                    protocol.ERROR,
                    protocol.error_payload("internal", str(exc)),
                )
            if not future.cancelled():
                future.set_result(result)
            shard.queue.task_done()

    async def _sweep_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.idle_sweep_s)
            for shard in self._shards:
                await loop.run_in_executor(shard.executor, shard.sweep)

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer, self.config.max_payload_bytes)
        self._connections.add(connection)
        self._c_connections.inc()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self._c_bytes_in.inc(len(data))
                try:
                    frames = connection.assembler.feed(data)
                except ProtocolError as exc:
                    self._c_protocol.inc()
                    await self._send(
                        connection,
                        protocol.ERROR,
                        0,
                        protocol.error_payload("protocol", str(exc)),
                    )
                    break
                for frame in frames:
                    await self._accept_frame(connection, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(connection)
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    async def _accept_frame(
        self, connection: _Connection, frame: protocol.WireFrame
    ) -> None:
        """Admission-check one request and hand it to its shard."""
        self._c_requests.inc()
        if frame.frame_type not in protocol.REQUEST_TYPES:
            self._c_protocol.inc()
            await self._send(
                connection,
                protocol.ERROR,
                frame.seq,
                protocol.error_payload(
                    "bad-request",
                    f"unknown request type {frame.frame_type:#04x}",
                ),
            )
            return
        # metrics/health requests are served inline: they must work
        # even when every shard queue is saturated
        if frame.frame_type == protocol.STATS:
            await self._send(
                connection,
                protocol.OK,
                frame.seq,
                protocol.encode_json(self.registry.snapshot()),
            )
            return
        if frame.frame_type == protocol.PING:
            await self._send(
                connection,
                protocol.OK,
                frame.seq,
                protocol.encode_json(
                    {"version": protocol.PROTOCOL_VERSION,
                     "scenario": self.context.name}
                ),
            )
            return
        if self._draining:
            await self._retry_later(connection, frame.seq, "draining")
            return
        if connection.inflight >= self.config.max_inflight:
            await self._retry_later(connection, frame.seq, "inflight-cap")
            return
        try:
            shard, op, is_feed, deadline_ms = self._route(frame)
        except ProtocolError as exc:
            self._c_protocol.inc()
            await self._send(
                connection,
                protocol.ERROR,
                frame.seq,
                protocol.error_payload("protocol", str(exc)),
            )
            return
        except StreamError as exc:
            await self._retry_later(connection, frame.seq, str(exc))
            return
        if shard.queue.qsize() >= self.config.max_queue_depth:
            await self._retry_later(connection, frame.seq, "queue-full")
            return
        if deadline_ms is not None:
            op = self._guard_deadline(op, deadline_ms)
        connection.inflight += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await shard.queue.put((op, future))
        asyncio.get_running_loop().create_task(
            self._respond(connection, frame.seq, future, is_feed)
        )

    async def _respond(
        self,
        connection: _Connection,
        seq: int,
        future: "asyncio.Future",
        is_feed: bool,
    ) -> None:
        started = time.perf_counter()
        try:
            frame_type, payload = await future
        finally:
            connection.inflight -= 1
        elapsed = time.perf_counter() - started
        self._h_request.observe(elapsed)
        if is_feed:
            self._h_feed.observe(elapsed)
        if frame_type == protocol.ERROR:
            self._c_errors.inc()
        await self._send(connection, frame_type, seq, payload)

    async def _retry_later(
        self, connection: _Connection, seq: int, reason: str
    ) -> None:
        self._c_retry.inc()
        await self._send(
            connection,
            protocol.RETRY_LATER,
            seq,
            protocol.retry_later_payload(reason, self.config.retry_after_s),
        )

    async def _send(
        self, connection: _Connection, frame_type: int, seq: int,
        payload: bytes,
    ) -> None:
        data = protocol.encode_frame(
            frame_type, seq, payload,
            max_payload=self.config.max_payload_bytes,
        )
        self._c_bytes_out.inc(len(data))
        async with connection.write_lock:
            try:
                connection.writer.write(data)
                await connection.writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    # -- request routing and shard-thread operations -------------------
    def _route(
        self, frame: protocol.WireFrame
    ) -> Tuple[
        _Shard, Callable[[], Tuple[int, bytes]], bool, Optional[int]
    ]:
        """Build the shard-thread operation for one request; the last
        element is the request's relative deadline in milliseconds
        (``None`` when the client sent none).

        Raises :class:`ProtocolError` for malformed payloads and
        :class:`StreamError` for global-capacity refusals (mapped to
        ``RETRY_LATER`` by the caller).
        """
        if frame.frame_type == protocol.FEED_CHUNK:
            sid, chunk_index, eof, data, deadline_ms = (
                protocol.decode_feed_payload_ex(frame.payload)
            )
            shard = self._shards[self.ring.shard_for(sid)]
            return (
                shard,
                lambda: self._op_feed(shard, sid, chunk_index, eof, data),
                True,
                deadline_ms,
            )
        body = protocol.decode_json(frame.payload)
        deadline_ms = self._body_deadline(body)
        if frame.frame_type == protocol.OPEN_SESSION:
            sid = body.get("session_id")
            if sid is None:
                self._session_counter += 1
                sid = f"g{self._session_counter:06d}"
            if not isinstance(sid, str) or not sid:
                raise ProtocolError("session_id must be a non-empty string")
            mode = body.get("mode")
            transport = body.get("transport", "text")
            if transport not in TRANSPORTS:
                raise ProtocolError(
                    f"unknown transport {transport!r}; choose "
                    f"{' or '.join(TRANSPORTS)}"
                )
            open_sessions = sum(len(s.manager) for s in self._shards)
            if open_sessions >= self.config.max_sessions:
                raise StreamError("session-table-full")
            shard = self._shards[self.ring.shard_for(sid)]
            return (
                shard,
                lambda: self._op_open(shard, sid, mode, str(transport)),
                False,
                deadline_ms,
            )
        sid = body.get("session_id")
        if not isinstance(sid, str) or not sid:
            raise ProtocolError("session_id must be a non-empty string")
        shard = self._shards[self.ring.shard_for(sid)]
        if frame.frame_type == protocol.SNAPSHOT:
            return (
                shard, lambda: self._op_snapshot(shard, sid), False,
                deadline_ms,
            )
        return (
            shard, lambda: self._op_close(shard, sid), False, deadline_ms,
        )

    @staticmethod
    def _body_deadline(body: Dict[str, object]) -> Optional[int]:
        """The optional ``deadline_ms`` field of a JSON request body."""
        deadline = body.get("deadline_ms")
        if deadline is None:
            return None
        if not isinstance(deadline, int) or isinstance(deadline, bool):
            raise ProtocolError("deadline_ms must be an integer")
        if not 0 <= deadline <= 0xFFFFFFFF:
            raise ProtocolError(f"deadline {deadline}ms out of range")
        return deadline

    def _guard_deadline(
        self,
        op: Callable[[], Tuple[int, bytes]],
        deadline_ms: int,
    ) -> Callable[[], Tuple[int, bytes]]:
        """Wrap a shard operation so that, by the time the shard's
        worker dequeues it, an already-expired request budget is
        answered with ``RETRY_LATER`` *before* anything is applied --
        the client has given up waiting, so doing the work would break
        the no-effect promise its retransmit relies on."""
        expires_at = time.monotonic() + deadline_ms / 1000.0

        def guarded() -> Tuple[int, bytes]:
            if time.monotonic() >= expires_at:
                self._c_deadline.inc()
                return (
                    protocol.RETRY_LATER,
                    protocol.retry_later_payload(
                        "deadline-exceeded", self.config.retry_after_s
                    ),
                )
            return op()

        return guarded

    def _op_open(
        self, shard: _Shard, sid: str, mode: Optional[object],
        transport: str,
    ) -> Tuple[int, bytes]:
        revived = self._revive(shard, sid)
        if revived is not None:
            # reopening a spilled session resumes it; the reply's
            # next_chunk tells the client where the durable
            # high-watermark is so it replays only the tail
            self._c_opens.inc()
            return (
                protocol.OK,
                protocol.encode_json(
                    {
                        "session_id": sid,
                        "shard": shard.index,
                        "transport": revived.transport,
                        "mode": shard.manager.session(sid).mode,
                        "resumed": True,
                        "next_chunk": revived.next_chunk,
                    }
                ),
            )
        try:
            self._apply_open(shard, sid, mode, transport)
        except StreamError as exc:
            if "table full" in str(exc):
                return (
                    protocol.RETRY_LATER,
                    protocol.retry_later_payload(
                        "session-table-full", self.config.retry_after_s
                    ),
                )
            return (
                protocol.ERROR,
                protocol.error_payload("session-exists", str(exc)),
            )
        except SelectionError as exc:
            return (
                protocol.ERROR,
                protocol.error_payload("bad-request", str(exc)),
            )
        if shard.durable:
            # logged *after* the apply: a crash in between loses only
            # an un-acked open, which the client simply retries
            self._wal_append(
                shard,
                lambda: shard.store.log_open(
                    sid, shard.manager.session(sid).mode, transport
                ),
            )
        self._c_opens.inc()
        return (
            protocol.OK,
            protocol.encode_json(
                {
                    "session_id": sid,
                    "shard": shard.index,
                    "transport": transport,
                    "mode": shard.manager.session(sid).mode,
                }
            ),
        )

    def _op_feed(
        self, shard: _Shard, sid: str, chunk_index: int, eof: bool,
        data: bytes,
    ) -> Tuple[int, bytes]:
        session = shard.sessions.get(sid)
        if session is None:
            session = self._revive(shard, sid)
        if session is None:
            return self._unknown_session(shard, sid)
        if chunk_index < session.next_chunk:
            # a retransmit of an already-applied chunk (the response
            # was lost); acknowledge without re-feeding
            return (
                protocol.OK,
                protocol.encode_json(
                    {
                        "session_id": sid,
                        "chunk_index": chunk_index,
                        "duplicate": True,
                        "consumed": 0,
                        "records": 0,
                        "status": session.last_status,
                        "observed_length": session.observed_length,
                        "frontier_size": session.frontier_size,
                        "next_chunk": session.next_chunk,
                    }
                ),
            )
        if chunk_index > session.next_chunk:
            return (
                protocol.ERROR,
                protocol.error_payload(
                    "chunk-gap",
                    f"expected chunk {session.next_chunk}, "
                    f"got {chunk_index}",
                    expected=session.next_chunk,
                ),
            )
        if shard.durable:
            # log-before-apply: once the client sees this chunk's OK,
            # the chunk is on disk.  A crash between the append and the
            # apply is safe -- replay applies it, the un-acked client
            # retransmits, and idempotency answers with a duplicate-ack
            self._wal_append(
                shard,
                lambda: shard.store.log_feed(sid, chunk_index, data, eof),
            )
        try:
            record_count, outcome = self._apply_feed(
                shard, session, chunk_index, eof, data
            )
        except StreamError:
            return self._unknown_session(shard, sid)
        except Exception as exc:  # noqa: BLE001 - poison payload
            return self._poisoned_feed(shard, session, exc)
        session.failures = 0
        self._c_feeds.inc()
        self._c_records.inc(outcome.consumed)
        reply = (
            protocol.OK,
            protocol.encode_json(
                {
                    "session_id": sid,
                    "chunk_index": chunk_index,
                    "duplicate": False,
                    "consumed": outcome.consumed,
                    "records": record_count,
                    "status": outcome.status,
                    "observed_length": outcome.observed_length,
                    "frontier_size": outcome.frontier_size,
                    "next_chunk": session.next_chunk,
                }
            ),
        )
        if shard.durable and shard.store.should_snapshot():
            try:
                self._snapshot_shard(shard)
            except StoreWriteError as exc:
                # a failed checkpoint costs replay time, not data: the
                # WAL still has everything, so alert and keep serving
                self._c_snapfail.inc()
                self._alert(
                    "snapshot-failed",
                    shard=shard.index,
                    reason=str(exc),
                    path=exc.path,
                )
        return reply

    def _poisoned_feed(
        self, shard: _Shard, session: _ServerSession, exc: Exception
    ) -> Tuple[int, bytes]:
        """Answer a feed whose apply crashed in a way no retry can fix.

        Strikes accumulate per session; past
        ``ServerConfig.quarantine_after`` the session is forcibly
        retired with a terminal ``session-quarantined`` error (logged
        to the WAL so a restart does not resurrect it), because letting
        a client retry a poisonous payload forever is an availability
        bug, not fault tolerance."""
        sid = session.session_id
        session.failures += 1
        if session.failures < self.config.quarantine_after:
            return (
                protocol.ERROR,
                protocol.error_payload(
                    "poison-payload",
                    f"feed to session {sid!r} failed to apply: {exc}",
                    failures=session.failures,
                    quarantine_after=self.config.quarantine_after,
                ),
            )
        try:
            shard.manager.quarantine(sid)
        except StreamError:  # pragma: no cover - raced retirement
            pass
        shard.sessions.pop(sid, None)
        if shard.durable:
            # a WAL close retires the session at replay time too --
            # otherwise recovery would faithfully rebuild the poisoned
            # session and the next feed would re-strike it
            shard.store.drop_spilled(sid)
            self._wal_append(shard, lambda: shard.store.log_close(sid))
        self._c_quarantined.inc()
        self._alert(
            "session-quarantined",
            shard=shard.index,
            session_id=sid,
            reason=str(exc),
        )
        return (
            protocol.ERROR,
            protocol.error_payload(
                "session-quarantined",
                f"session {sid!r} was quarantined after "
                f"{session.failures} consecutive poisonous feeds "
                f"(last: {exc})",
            ),
        )

    def _op_snapshot(self, shard: _Shard, sid: str) -> Tuple[int, bytes]:
        if sid not in shard.sessions:
            self._revive(shard, sid)
        try:
            result = shard.manager.snapshot(sid)
            session = shard.manager.session(sid)
            status = session.status
            observed = session.localizer.observed_length
        except StreamError:
            return self._unknown_session(shard, sid)
        wrapper = shard.sessions.get(sid)
        return (
            protocol.OK,
            protocol.encode_json(
                {
                    "session_id": sid,
                    "consistent_paths": result.consistent_paths,
                    "total_paths": result.total_paths,
                    "fraction": result.fraction,
                    "status": status,
                    "observed_length": observed,
                    # the chunk cursor lets a client detect a server
                    # that recovered without its acked tail (e.g. the
                    # shard degraded before a crash) and replay it
                    "next_chunk": (
                        wrapper.next_chunk if wrapper is not None else 0
                    ),
                }
            ),
        )

    def _op_close(self, shard: _Shard, sid: str) -> Tuple[int, bytes]:
        if sid not in shard.sessions:
            self._revive(shard, sid)
        wrapper = shard.sessions.get(sid)
        next_chunk = wrapper.next_chunk if wrapper is not None else 0
        try:
            record = shard.manager.close(sid)
        except StreamError:
            return self._unknown_session(shard, sid)
        shard.sessions.pop(sid, None)
        if shard.durable:
            shard.store.drop_spilled(sid)
            self._wal_append(shard, lambda: shard.store.log_close(sid))
        self._c_closes.inc()
        extra = record.extra
        return (
            protocol.OK,
            protocol.encode_json(
                {
                    "session_id": sid,
                    "status": str(extra["status"]),
                    "records": extra["records"],
                    "observed_length": extra["observed_length"],
                    "consistent_paths": extra["consistent_paths"],
                    "total_paths": extra["total_paths"],
                    "fraction": extra["fraction"],
                    "next_chunk": next_chunk,
                }
            ),
        )

    def _unknown_session(self, shard: _Shard, sid: str) -> Tuple[int, bytes]:
        shard.sessions.pop(sid, None)
        return (
            protocol.ERROR,
            protocol.error_payload(
                "unknown-session",
                f"session {sid!r} is not open on this server "
                "(closed, evicted, or lost to a restart)",
            ),
        )

    # -- apply helpers (shared by live ops and WAL replay) --------------
    def _apply_open(
        self, shard: _Shard, sid: str, mode: Optional[object],
        transport: str,
    ) -> None:
        shard.manager.open(sid, mode=mode if mode is None else str(mode))
        shard.sessions[sid] = _ServerSession(
            sid, transport, self.context.catalog
        )

    def _apply_feed(
        self,
        shard: _Shard,
        session: _ServerSession,
        chunk_index: int,
        eof: bool,
        data: bytes,
    ):
        """Ingest one chunk and advance the session; returns
        ``(record_count, FeedOutcome)``.  Both live traffic and WAL
        replay run through here -- that sharing is what makes a
        recovered session bit-identical to an uninterrupted one."""
        if session.transport == "ctrace":
            records = list(session.ingester.feed(data))
            if eof:
                records.extend(session.ingester.close())
            session.wire_bytes += len(data)
            self._c_cbytes.inc(len(data))
            if records:
                from repro.compress.encoder import uncompressed_capture_bits

                added_bits = uncompressed_capture_bits(records)
                session.raw_bits += added_bits
                self._c_craw.inc(added_bits)
        else:
            text = session.decoder.decode(data, final=eof)
            records = list(session.parser.feed(text))
            if eof:
                records.extend(session.parser.close())
        outcome = shard.manager.feed(
            session.session_id, records, drop_invisible=True
        )
        session.next_chunk = chunk_index + 1
        session.records += outcome.consumed
        session.last_status = outcome.status
        session.observed_length = outcome.observed_length
        session.frontier_size = outcome.frontier_size
        return len(records), outcome

    # -- durability (repro.store) ---------------------------------------
    def _wal_append(
        self, shard: _Shard, append: Callable[[], int]
    ) -> Optional[int]:
        """Run one store append; a physical write failure degrades the
        shard (memory-only mode, structured alert, metric) instead of
        killing the request -- returns ``None`` in that case."""
        started = time.perf_counter()
        try:
            lsn = append()
        except StoreWriteError as exc:
            self._degrade_shard(shard, exc)
            return None
        self._h_wal.observe(time.perf_counter() - started)
        return lsn

    def _degrade_shard(self, shard: _Shard, exc: StoreWriteError) -> None:
        """Flip a shard into explicit memory-only mode after a store
        write failure.  The shard keeps serving -- every session stays
        live -- but durability promises stop, the health collector
        reports ``degraded``, and an alert records exactly what broke.
        Sticky by design: the WAL never resynchronizes past a torn
        record, so resuming appends after a failure could silently
        strand acked data behind an unreadable tail."""
        if shard.degraded:
            return
        shard.degraded = True
        shard.degraded_reason = str(exc)
        self._c_degraded.inc()
        self._alert(
            "wal-degraded",
            shard=shard.index,
            reason=str(exc),
            path=exc.path,
            lsn=exc.lsn,
        )

    def _install_state(
        self, shard: _Shard, state: dict
    ) -> Optional[_ServerSession]:
        """Adopt one captured session (snapshot entry or spilled state)
        back into the shard; ``None`` when the table is full."""
        sid = str(state["session_id"])
        # spill anything idle first so adopt's internal eviction can
        # never silently drop a session the store should have kept
        shard.sweep()
        try:
            shard.manager.adopt(
                sid,
                mode=state.get("mode"),
                status=str(state.get("status", "active")),
                feeds=int(state.get("feeds", 0)),
                records=int(state.get("records", 0)),
                localizer_state=state.get("localizer"),
            )
        except StreamError:
            return None
        wrapper = _ServerSession.restore(state, self.context.catalog)
        shard.sessions[sid] = wrapper
        return wrapper

    def _revive(self, shard: _Shard, sid: str) -> Optional[_ServerSession]:
        """Bring a spilled (evicted-but-durable) session back live."""
        if not shard.durable:
            return None
        state = shard.store.take_spilled(sid)
        if state is None:
            return None
        wrapper = self._install_state(shard, state)
        if wrapper is None:
            shard.store.spill(state)  # table full: park it again
        return wrapper

    def _snapshot_shard(self, shard: _Shard) -> None:
        """Checkpoint one shard (runs on its executor thread, so it
        serializes with that shard's operations)."""
        shard.store.write_snapshot(
            shard.capture_states(),
            fingerprint=self._fingerprint or "",
            scenario=self.context.name,
            mode=self.context.mode,
            session_counter=self._session_counter,
        )

    def _final_snapshot(self, shard: _Shard) -> None:
        """Durable shutdown of one shard: checkpoint, then seal the
        WAL.  Sessions are *not* retired -- they come back on the next
        start.  A write failure here degrades instead of raising: the
        WAL already holds everything an acked request needs, so the
        next start just replays a longer tail."""
        try:
            try:
                self._snapshot_shard(shard)
            finally:
                shard.store.close()
        except StoreWriteError as exc:
            self._degrade_shard(shard, exc)

    def _note_session_id(self, sid: str) -> None:
        """Keep the generated-id counter past every durable id, so a
        restarted server never re-issues one."""
        if sid.startswith("g") and sid[1:].isdigit():
            self._session_counter = max(
                self._session_counter, int(sid[1:])
            )

    def _recover_from_store(self) -> None:
        """Rebuild every shard from its data directory: newest valid
        snapshot, then the WAL tail through the same apply path live
        traffic takes.  Refuses state from a different scenario."""
        started = time.perf_counter()
        data_dir = self.config.data_dir
        meta = read_meta(data_dir)
        if meta is None:
            write_meta(
                data_dir,
                {
                    "format": META_FORMAT,
                    "scenario": self.context.name,
                    "mode": self.context.mode,
                    "fingerprint": self._fingerprint,
                    "shards": len(self._shards),
                },
            )
        else:
            if meta.get("fingerprint") not in (None, self._fingerprint):
                raise StoreError(
                    f"data directory {data_dir} belongs to a different "
                    f"scenario (stored fingerprint "
                    f"{meta.get('fingerprint')!r}, serving "
                    f"{self._fingerprint!r})"
                )
            if int(meta.get("shards", len(self._shards))) != len(
                self._shards
            ):
                raise StoreError(
                    f"data directory {data_dir} was written with "
                    f"{meta.get('shards')} shard(s); this server runs "
                    f"{len(self._shards)} -- session routing would break"
                )
        sessions = replayed = 0
        diagnostics: List[str] = []
        for shard in self._shards:
            shard_started = time.perf_counter()
            recovered = shard.store.open()
            diagnostics.extend(recovered.diagnostics)
            snap = recovered.snapshot
            if snap is not None:
                snap_fp = snap.get("fingerprint")
                if snap_fp not in (None, "", self._fingerprint):
                    raise StoreError(
                        f"shard {shard.index} snapshot was taken on a "
                        f"different scenario (fingerprint {snap_fp!r})"
                    )
                self._session_counter = max(
                    self._session_counter,
                    int(snap.get("session_counter", 0)),
                )
                for state in snap.get("sessions", ()):
                    self._note_session_id(str(state["session_id"]))
                    self._install_state(shard, state)
                for sid in shard.store.spilled_ids():
                    self._note_session_id(sid)
            for record in recovered.tail:
                self._replay_record(shard, record)
                replayed += 1
            # what actually came back: live sessions (snapshot +
            # WAL-replayed opens) plus revivable spilled ones
            sessions += len(shard.manager) + len(
                shard.store.spilled_ids()
            )
            shard.store.recovered_sessions = len(shard.manager)
            shard.store.recovered_records = recovered.replay_records
            shard.store.recovery_wall_s = (
                time.perf_counter() - shard_started
            )
        self._recovery = {
            "sessions": sessions,
            "replayed_records": replayed,
            "wall_s": round(time.perf_counter() - started, 6),
            "diagnostics": diagnostics,
        }

    def _replay_record(
        self, shard: _Shard, record: wal_mod.WalRecord
    ) -> None:
        """Apply one trusted WAL tail record at recovery time."""
        if record.rec_type == wal_mod.WAL_OPEN:
            body = json.loads(record.payload.decode("utf-8"))
            sid = str(body["session_id"])
            self._note_session_id(sid)
            if sid in shard.sessions:  # pragma: no cover - defensive
                return
            try:
                self._apply_open(
                    shard,
                    sid,
                    body.get("mode"),
                    str(body.get("transport", "text")),
                )
            except (StreamError, SelectionError):  # pragma: no cover
                pass
        elif record.rec_type == wal_mod.WAL_FEED:
            sid, chunk_index, eof, data = protocol.decode_feed_payload(
                record.payload
            )
            session = shard.sessions.get(sid)
            if session is None:
                session = self._revive(shard, sid)
            if session is None or chunk_index != session.next_chunk:
                # orphaned or already-folded feed: nothing to redo
                return
            try:
                self._apply_feed(shard, session, chunk_index, eof, data)
            except Exception:  # noqa: BLE001 - incl. poison payloads
                # a feed that crashed the apply live (and was logged
                # before the crash surfaced) must not crash recovery;
                # the quarantine close that followed it retires the
                # session a few records later in the same tail
                pass
        elif record.rec_type == wal_mod.WAL_CLOSE:
            sid = str(
                json.loads(record.payload.decode("utf-8"))["session_id"]
            )
            if sid in shard.sessions:
                try:
                    shard.manager.close(sid)
                except StreamError:  # pragma: no cover - defensive
                    pass
                shard.sessions.pop(sid, None)
            else:
                shard.store.drop_spilled(sid)

    # -- metrics plane -------------------------------------------------
    async def _handle_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
        except Exception:
            writer.close()
            return
        body = json.dumps(
            self.registry.snapshot(), indent=2, sort_keys=True
        ).encode("utf-8")
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode("ascii")
            + b"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()


class ServerThread:
    """Runs a :class:`DebugServer` on a background event-loop thread.

    The blocking-world adapter used by tests, ``benchmarks/
    server_bench.py``, and anything else that wants a live server
    without owning an event loop.  ``stop(abort=True)`` simulates a
    crash (connections torn down, queued work dropped) -- the
    client-retry soak test kills and restarts a server this way.
    """

    def __init__(
        self,
        context: ServeContext,
        config: Optional[ServerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.server = DebugServer(context, config=config, registry=registry)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._release: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise StreamError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise StreamError("server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self.server.host, self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._release = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._release.wait()

    def stop(self, drain: bool = True, abort: bool = False) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive() and self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain, abort=abort), self._loop
            )
            future.result(timeout=60.0)
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._release.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
