"""Multi-process load generator for the debug service.

Replays simulator-produced trace files against a running
:class:`~repro.server.server.DebugServer` and reports throughput and
latency in the **same shapes** as the in-process
``repro.stream.service.run_load_test`` -- both delegate to
:func:`repro.stream.workload.drive_session`, so their numbers are
directly comparable (``benchmarks/server_bench.py`` gates on exactly
that ratio).

The workload is faithful to the paper's setting: each session is one
seeded failing run of the simulator, projected onto the traced message
set, rendered to the Figure-4 trace-file text, and streamed over the
wire in chunks cut at record-line boundaries.  Chunks are pre-rendered
in the parent so worker processes need nothing but bytes; workers use
the ``spawn`` start method (the parent often hosts an in-process
:class:`~repro.server.server.ServerThread` whose event loop must not
be forked).

``processes=0`` runs every session inline on threads in the calling
process -- the deterministic path the tests use.
"""

from __future__ import annotations

import io
import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.selection.localization import LocalizationResult
from repro.server.client import DebugClient, RetryPolicy, SessionFeed
from repro.sim.tracefile import write_trace_file
from repro.stream.workload import (
    LoadTestReport,
    SessionOutcome,
    SessionTransport,
    build_report,
    drive_session,
    percentile,
)

#: One pre-rendered session workload: ``(session_id, chunk bytes...)``.
SessionJob = Tuple[str, Tuple[bytes, ...]]


class NetworkTransport(SessionTransport):
    """Adapts :class:`SessionFeed` to the workload driver's transport
    surface.  Chunks are raw bytes; recovery (reopen + replay after a
    server restart) is inherited from the feed, so a driven session
    survives the server dying mid-stream."""

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[object] = None,
    ) -> None:
        self.client = DebugClient(host, port, policy=policy, rng=rng)  # type: ignore[arg-type]
        self._feeds: Dict[str, SessionFeed] = {}

    def open(
        self, session_id: Optional[str] = None, mode: Optional[str] = None
    ) -> str:
        feed = SessionFeed(self.client, session_id=session_id, mode=mode)
        self._feeds[feed.session_id] = feed
        return feed.session_id

    def feed(self, session_id: str, chunk: object) -> int:
        return self._feeds[session_id].feed(bytes(chunk)).consumed  # type: ignore[arg-type]

    def snapshot(self, session_id: str) -> LocalizationResult:
        return self._feeds[session_id].snapshot().result

    def close(self, session_id: str) -> str:
        return self._feeds.pop(session_id).close().status

    @property
    def retries(self) -> int:
        return self.client.retries

    @property
    def recoveries(self) -> int:
        return sum(f.recoveries for f in self._feeds.values())

    def disconnect(self) -> None:
        self.client.close()


# ----------------------------------------------------------------------
# workload construction (parent process)
def render_session_chunks(
    context: "object",
    seed: int,
    chunk_records: int = 16,
    scenario_name: str = "loadgen",
) -> Tuple[bytes, ...]:
    """One session's wire chunks: a seeded simulated run projected onto
    the traced set, rendered to trace-file text, split at record-line
    boundaries (header rides in the first chunk; every chunk ends on a
    newline, so text parsing never waits on EOF)."""
    from repro.stream.service import synthetic_session_records

    records = synthetic_session_records(
        context.interleaved,  # type: ignore[attr-defined]
        context.traced,  # type: ignore[attr-defined]
        seed,
        scenario_name=scenario_name,
    )
    buffer = io.StringIO()
    write_trace_file(
        buffer, records, scenario=scenario_name, seed=seed
    )
    lines = buffer.getvalue().splitlines(keepends=True)
    if chunk_records < 1:
        raise ReproError(
            f"chunk_records must be >= 1, got {chunk_records}"
        )
    chunks = [
        "".join(lines[i : i + chunk_records]).encode("utf-8")
        for i in range(0, len(lines), chunk_records)
    ]
    return tuple(chunks) if chunks else (b"",)


def build_session_jobs(
    context: "object",
    sessions: int,
    seed: int = 0,
    chunk_records: int = 16,
    scenario_name: str = "loadgen",
) -> Tuple[SessionJob, ...]:
    """Pre-render every session's chunks (seeds ``seed..seed+n-1``)."""
    if sessions < 1:
        raise ReproError(f"sessions must be >= 1, got {sessions}")
    return tuple(
        (
            f"lg-{seed + i:04d}",
            render_session_chunks(
                context, seed + i, chunk_records, scenario_name
            ),
        )
        for i in range(sessions)
    )


# ----------------------------------------------------------------------
# worker (runs in a spawned process, or inline when processes=0)
def _drive_jobs(
    host: str,
    port: int,
    jobs: Sequence[SessionJob],
    mode: str,
    threads: int,
    policy: RetryPolicy,
) -> List[Dict[str, object]]:
    """Drive *jobs* on a thread pool, one transport per thread-session
    (clients are not thread-safe).  Returns plain dicts so the result
    crosses process boundaries without pickling repro objects."""

    def one(job: SessionJob) -> Dict[str, object]:
        session_id, chunks = job
        transport = NetworkTransport(host, port, policy=policy)
        try:
            outcome = drive_session(
                transport, chunks, session_id=session_id, mode=mode
            )
            return {
                "session_id": outcome.session_id,
                "consistent_paths": outcome.result.consistent_paths,
                "total_paths": outcome.result.total_paths,
                "status": outcome.status,
                "records": outcome.records,
                "latencies": list(outcome.feed_latencies_s),
                "retries": transport.retries,
                "recoveries": transport.recoveries,
            }
        except ReproError as exc:
            return {
                "session_id": session_id,
                "failure": f"{type(exc).__name__}: {exc}",
                "retries": transport.retries,
                "recoveries": transport.recoveries,
            }
        finally:
            transport.disconnect()

    if threads <= 1 or len(jobs) <= 1:
        return [one(job) for job in jobs]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(one, jobs))


def _warm_worker(_index: int) -> int:
    """Force the spawned worker's imports before the timed window --
    interpreter start-up is not part of the server's throughput."""
    import repro.server.client  # noqa: F401

    return _index


@dataclass(frozen=True)
class NetworkLoadReport:
    """A :class:`LoadTestReport` plus wire-level accounting."""

    report: LoadTestReport
    retries: int
    recoveries: int
    failures: Tuple[str, ...]
    p50_feed_latency_s: float
    p99_feed_latency_s: float

    def as_dict(self) -> Dict[str, object]:
        payload = self.report.as_dict()
        payload["retries"] = self.retries
        payload["recoveries"] = self.recoveries
        payload["failures"] = list(self.failures)
        payload["p50_feed_latency_s"] = round(self.p50_feed_latency_s, 6)
        payload["p99_feed_latency_s"] = round(self.p99_feed_latency_s, 6)
        return payload


def run_network_load_test(
    host: str,
    port: int,
    context: "object",
    sessions: int = 8,
    processes: int = 2,
    threads: int = 2,
    chunk_records: int = 16,
    seed: int = 0,
    mode: str = "prefix",
    policy: Optional[RetryPolicy] = None,
    scenario_name: str = "loadgen",
) -> NetworkLoadReport:
    """Replay *sessions* simulated trace files against ``host:port``.

    Sessions are dealt round-robin over *processes* worker processes
    (``processes=0`` → inline in this process), each driving up to
    *threads* sessions concurrently.  The wall clock covers the full
    networked span, so ``records_per_s`` is end-to-end throughput.
    """
    jobs = build_session_jobs(
        context, sessions, seed, chunk_records, scenario_name
    )
    if policy is None:
        policy = RetryPolicy()
    if processes <= 0:
        started = perf_counter()
        rows = _drive_jobs(host, port, jobs, mode, threads, policy)
        wall_s = perf_counter() - started
    else:
        shares: List[List[SessionJob]] = [[] for _ in range(processes)]
        for i, job in enumerate(jobs):
            shares[i % processes].append(job)
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=processes) as pool:
            pool.map(_warm_worker, range(processes))
            started = perf_counter()
            parts = pool.starmap(
                _drive_jobs,
                [
                    (host, port, share, mode, threads, policy)
                    for share in shares
                    if share
                ],
            )
            wall_s = perf_counter() - started
        rows = [row for part in parts for row in part]

    outcomes: List[SessionOutcome] = []
    failures: List[str] = []
    retries = 0
    recoveries = 0
    for row in rows:
        retries += int(row.get("retries", 0))  # type: ignore[arg-type]
        recoveries += int(row.get("recoveries", 0))  # type: ignore[arg-type]
        if "failure" in row:
            failures.append(f"{row['session_id']}: {row['failure']}")
            continue
        outcomes.append(
            SessionOutcome(
                session_id=str(row["session_id"]),
                result=LocalizationResult(
                    consistent_paths=int(row["consistent_paths"]),  # type: ignore[arg-type]
                    total_paths=int(row["total_paths"]),  # type: ignore[arg-type]
                ),
                status=str(row["status"]),
                records=int(row["records"]),  # type: ignore[arg-type]
                feed_latencies_s=tuple(row["latencies"]),  # type: ignore[arg-type]
            )
        )
    latencies = sorted(
        latency for o in outcomes for latency in o.feed_latencies_s
    )
    workers = (processes if processes > 0 else 1) * max(threads, 1)
    return NetworkLoadReport(
        report=build_report(
            outcomes, workers, chunk_records, mode, wall_s
        ),
        retries=retries,
        recoveries=recoveries,
        failures=tuple(failures),
        p50_feed_latency_s=percentile(latencies, 0.50),
        p99_feed_latency_s=percentile(latencies, 0.99),
    )
