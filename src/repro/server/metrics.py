"""Pull-based metrics for the debug service.

A :class:`MetricsRegistry` owns named counters, gauges, and latency
histograms, plus *collectors* -- callables sampled at scrape time that
fold in state owned elsewhere (per-shard :class:`~repro.stream.session.
SessionManager` stats, :mod:`repro.runtime` cache hit/miss counters,
:mod:`repro.perf` stage counters such as the trace-buffer eviction/
overwrite totals, compression ratios).  Everything is exported as one
JSON-ready dict, served two ways: on the wire protocol's ``STATS``
frame and over plain HTTP via ``repro serve --metrics-port``.

All mutators are thread-safe (shard worker threads and the asyncio
loop both update them); scraping takes each metric's lock only briefly,
so a scrape never stalls the serving path.

Histograms keep a bounded ring of the most recent observations (plus
exact lifetime count/sum/max), so p50/p95/p99 reflect *recent* latency
-- what an operator dashboards -- with O(window) memory forever.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.stream.workload import percentile

Collector = Callable[[], Dict[str, object]]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, open sessions, ratio)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Latency distribution over a bounded window of observations."""

    __slots__ = ("_lock", "_window", "_ring", "_next", "count", "total",
                 "max_value")

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._window = window
        self._ring: List[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value > self.max_value:
                self.max_value = value
            if len(self._ring) < self._window:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
                self._next = (self._next + 1) % self._window

    def summary(self) -> Dict[str, float]:
        with self._lock:
            retained = sorted(self._ring)
            count, total, peak = self.count, self.total, self.max_value
        return {
            "count": count,
            "sum_s": round(total, 6),
            "mean_s": round(total / count, 6) if count else 0.0,
            "p50_s": round(percentile(retained, 0.50), 6),
            "p95_s": round(percentile(retained, 0.95), 6),
            "p99_s": round(percentile(retained, 0.99), 6),
            "max_s": round(peak, 6),
            "window": len(retained),
        }


class MetricsRegistry:
    """Named metrics plus scrape-time collectors, exported as JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Collector] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(window)
            return metric

    def add_collector(self, name: str, collector: Collector) -> None:
        """Register *collector*; its dict lands under key *name* in
        every :meth:`snapshot` (errors surface as ``{"error": ...}``
        instead of failing the scrape)."""
        with self._lock:
            self._collectors[name] = collector

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready view of every metric and collector."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        payload: Dict[str, object] = {
            "counters": {
                name: metric.value for name, metric in sorted(counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(histograms.items())
            },
        }
        for name, collector in sorted(collectors.items()):
            try:
                payload[name] = collector()
            except Exception as exc:  # scrape must never take the
                payload[name] = {"error": str(exc)}  # service down
        return payload


# ----------------------------------------------------------------------
# stock collectors
def runtime_cache_collector() -> Dict[str, object]:
    """Hit/miss counters of the process-wide artifact cache."""
    from repro.runtime.cache import default_cache

    cache = default_cache()
    stats = cache.stats.as_dict()
    stats["directory"] = str(cache.directory)
    return stats


def perf_counters_collector(counters: "object") -> Collector:
    """Export a live :class:`repro.perf.PerfCounters` (stage counters
    including ``tracebuffer_evictions`` / ``tracebuffer_overwritten_
    bits`` from any capture replays the service runs)."""

    def collect() -> Dict[str, object]:
        return counters.as_dict()  # type: ignore[attr-defined]

    return collect
