"""The debug service's wire protocol: length-prefixed, versioned,
CRC-validated binary frames.

Every request and response travels as one frame (all multi-byte fields
big-endian)::

    +------+------+---------+------+--------+---------+-----------+-------+
    | 0x52 | 0x70 | version | type | seq(32)| len(32) | payload.. | crc16 |
    +------+------+---------+------+--------+---------+-----------+-------+

``crc16`` is the CRC-16/CCITT of :mod:`repro.runtime.checksum` -- the
same machinery that guards on-chip trace frames guards the wire --
computed over ``version..payload``.  ``seq`` is a request-scoped
correlation id: responses echo the request's ``seq``, so a client may
pipeline.  The length prefix makes framing trivial to parse
incrementally; unlike the self-resynchronizing compressed-trace format,
TCP already guarantees ordering, so any malformed byte is a **fatal**
protocol error for the connection (the peer replies ``ERROR`` where it
can and closes).

Request payloads are compact JSON (UTF-8) except ``FEED_CHUNK``, whose
payload is binary so compressed-trace bytes never pay a base64 tax::

    u8 sid_len | sid (UTF-8) | u32 chunk_index | u8 flags | data...

``chunk_index`` makes feeds idempotent: the server tracks the next
expected index per session, acknowledges duplicates without
re-applying them (a retry after a lost response cannot double-feed),
and rejects gaps with a structured ``chunk-gap`` error.  Flag bit 0
marks end-of-stream (the server flushes a trailing partial line).

Response payloads are always JSON.  ``ERROR`` carries ``{"error":
code, "message": text}``; ``RETRY_LATER`` -- the backpressure reply --
carries ``{"reason": ..., "retry_after_s": hint}`` and promises the
request had **no effect**, so retrying is always safe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.checksum import crc16
from repro.errors import ProtocolError

#: Protocol magic ("Rp") and the one supported version.
MAGIC = b"Rp"
PROTOCOL_VERSION = 1

#: Fixed sizes: magic(2) + version(1) + type(1) + seq(4) + len(4), and
#: the trailing CRC-16.
HEADER_BYTES = 12
TRAILER_BYTES = 2

#: Default cap on payload size; both sides enforce it *from the header*
#: so an oversized frame is rejected before its body is buffered.
DEFAULT_MAX_PAYLOAD = 1 << 20

# Request frame types.
OPEN_SESSION = 0x01
FEED_CHUNK = 0x02
SNAPSHOT = 0x03
CLOSE_SESSION = 0x04
STATS = 0x05
PING = 0x06

# Response frame types.
OK = 0x81
ERROR = 0x82
RETRY_LATER = 0x83

REQUEST_TYPES = frozenset(
    (OPEN_SESSION, FEED_CHUNK, SNAPSHOT, CLOSE_SESSION, STATS, PING)
)
RESPONSE_TYPES = frozenset((OK, ERROR, RETRY_LATER))

#: Feed flags.
FLAG_EOF = 0x01
#: The payload carries a relative request deadline: 4 extra bytes
#: (``u32 deadline_ms``) between the flags and the data.  Relative --
#: not absolute -- so clocks never need agreement and a retransmit
#: restarts the budget on delivery.
FLAG_DEADLINE = 0x02


@dataclass(frozen=True)
class WireFrame:
    """One decoded wire frame."""

    frame_type: int
    seq: int
    payload: bytes
    version: int = PROTOCOL_VERSION


def encode_frame(
    frame_type: int,
    seq: int,
    payload: bytes = b"",
    version: int = PROTOCOL_VERSION,
    max_payload: int = DEFAULT_MAX_PAYLOAD,
) -> bytes:
    """Serialize one frame (magic + header + payload + CRC)."""
    if not 0 <= frame_type <= 0xFF:
        raise ProtocolError(f"frame type {frame_type} out of range")
    if not 0 <= seq <= 0xFFFFFFFF:
        raise ProtocolError(f"sequence number {seq} out of range")
    if len(payload) > max_payload:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{max_payload}-byte limit"
        )
    body = (
        bytes((version, frame_type))
        + seq.to_bytes(4, "big")
        + len(payload).to_bytes(4, "big")
        + payload
    )
    return MAGIC + body + crc16(body).to_bytes(2, "big")


class FrameAssembler:
    """Incrementally reassembles frames from a TCP byte stream.

    :meth:`feed` buffers arbitrary chunks and returns every frame that
    completed.  A partial frame simply waits for more bytes; bad magic,
    an unsupported version, an oversized declared length, or a CRC
    mismatch raise :class:`~repro.errors.ProtocolError` -- the stream
    is not trusted past the first corruption.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD) -> None:
        self.max_payload = max_payload
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        """Bytes awaiting a frame boundary (0 = clean cut)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[WireFrame]:
        self._buffer.extend(data)
        frames: List[WireFrame] = []
        while True:
            frame = self._try_next()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_next(self) -> Optional[WireFrame]:
        buf = self._buffer
        if len(buf) < HEADER_BYTES:
            if buf and not MAGIC.startswith(bytes(buf[:2])):
                raise ProtocolError(
                    f"bad frame magic {bytes(buf[:2])!r}"
                )
            return None
        if bytes(buf[:2]) != MAGIC:
            raise ProtocolError(f"bad frame magic {bytes(buf[:2])!r}")
        version = buf[2]
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(this side speaks {PROTOCOL_VERSION})"
            )
        length = int.from_bytes(buf[8:12], "big")
        if length > self.max_payload:
            raise ProtocolError(
                f"declared payload of {length} bytes exceeds the "
                f"{self.max_payload}-byte limit"
            )
        end = HEADER_BYTES + length + TRAILER_BYTES
        if len(buf) < end:
            return None
        body = bytes(buf[2 : HEADER_BYTES + length])
        stored = int.from_bytes(buf[HEADER_BYTES + length : end], "big")
        computed = crc16(body)
        if stored != computed:
            raise ProtocolError(
                f"frame CRC mismatch (stored {stored:#06x}, "
                f"computed {computed:#06x})"
            )
        frame = WireFrame(
            frame_type=buf[3],
            seq=int.from_bytes(buf[4:8], "big"),
            payload=bytes(buf[HEADER_BYTES : HEADER_BYTES + length]),
            version=version,
        )
        del buf[:end]
        return frame


# ----------------------------------------------------------------------
# payload codecs
def encode_json(obj: Dict[str, object]) -> bytes:
    """Compact, key-sorted JSON payload bytes."""
    return json.dumps(
        obj, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_json(payload: bytes) -> Dict[str, object]:
    """Parse a JSON payload; :class:`ProtocolError` on anything else."""
    if not payload:
        return {}
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable JSON payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"JSON payload must be an object, got {type(obj).__name__}"
        )
    return obj


def encode_feed_payload(
    session_id: str,
    chunk_index: int,
    data: bytes,
    eof: bool = False,
    deadline_ms: Optional[int] = None,
) -> bytes:
    """Binary ``FEED_CHUNK`` payload (see module docstring layout).

    ``deadline_ms`` (optional) propagates the client's per-request
    deadline; the server answers an expired request with
    ``RETRY_LATER`` *before* applying it, preserving the no-effect
    promise.
    """
    sid = session_id.encode("utf-8")
    if not sid or len(sid) > 0xFF:
        raise ProtocolError(
            f"session id must encode to 1..255 bytes, got {len(sid)}"
        )
    if not 0 <= chunk_index <= 0xFFFFFFFF:
        raise ProtocolError(f"chunk index {chunk_index} out of range")
    flags = FLAG_EOF if eof else 0
    extension = b""
    if deadline_ms is not None:
        if not 0 <= deadline_ms <= 0xFFFFFFFF:
            raise ProtocolError(
                f"deadline {deadline_ms}ms out of range"
            )
        flags |= FLAG_DEADLINE
        extension = deadline_ms.to_bytes(4, "big")
    return (
        bytes((len(sid),))
        + sid
        + chunk_index.to_bytes(4, "big")
        + bytes((flags,))
        + extension
        + data
    )


def decode_feed_payload(payload: bytes) -> Tuple[str, int, bool, bytes]:
    """Parse a ``FEED_CHUNK`` payload into
    ``(session_id, chunk_index, eof, data)`` (any carried deadline is
    validated and dropped -- the WAL replay path must not re-enforce
    a long-expired budget)."""
    sid, chunk_index, eof, data, _ = decode_feed_payload_ex(payload)
    return sid, chunk_index, eof, data


def decode_feed_payload_ex(
    payload: bytes,
) -> Tuple[str, int, bool, bytes, Optional[int]]:
    """Parse a ``FEED_CHUNK`` payload into ``(session_id, chunk_index,
    eof, data, deadline_ms)``; ``deadline_ms`` is ``None`` when the
    frame carries no deadline."""
    if len(payload) < 1:
        raise ProtocolError("empty FEED_CHUNK payload")
    sid_len = payload[0]
    if sid_len == 0 or len(payload) < 1 + sid_len + 5:
        raise ProtocolError("truncated FEED_CHUNK payload")
    try:
        sid = payload[1 : 1 + sid_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable session id: {exc}") from None
    base = 1 + sid_len
    chunk_index = int.from_bytes(payload[base : base + 4], "big")
    flags = payload[base + 4]
    start = base + 5
    deadline_ms: Optional[int] = None
    if flags & FLAG_DEADLINE:
        if len(payload) < start + 4:
            raise ProtocolError(
                "FEED_CHUNK payload declares a deadline but is too "
                "short to carry one"
            )
        deadline_ms = int.from_bytes(payload[start : start + 4], "big")
        start += 4
    return (
        sid, chunk_index, bool(flags & FLAG_EOF), payload[start:],
        deadline_ms,
    )


# ----------------------------------------------------------------------
# structured replies (shared client/server shapes)
def error_payload(code: str, message: str, **extra: object) -> bytes:
    return encode_json({"error": code, "message": message, **extra})


def retry_later_payload(reason: str, retry_after_s: float) -> bytes:
    return encode_json(
        {"reason": reason, "retry_after_s": round(retry_after_s, 4)}
    )
