"""Networked post-silicon debug service.

The paper's debug loop -- select observable messages, capture a
failing run's trace, localize the failure to a small set of consistent
flow paths -- runs here as a long-lived, shared service: validators
stream trace chunks at a central debug server as runs fail, instead of
shipping whole trace files around.

The pieces:

* :mod:`repro.server.protocol` -- the length-prefixed, versioned,
  CRC-validated binary wire format (the CRC machinery is
  :mod:`repro.compress.framing`'s, shared with on-chip trace frames).
* :mod:`repro.server.server` -- the asyncio TCP server: sessions are
  routed by consistent hash onto worker shards, admission control
  answers overload with structured ``RETRY_LATER`` (never a deadlock,
  never a dropped accepted session), idle sessions are evicted, and
  SIGINT/SIGTERM drain gracefully.
* :mod:`repro.server.client` -- the synchronous client: timeouts,
  retry with exponential backoff and jitter, and a streaming feed that
  replays its history if the server loses the session.
* :mod:`repro.server.metrics` -- the pull-based metrics plane served
  on the ``STATS`` frame and over HTTP.
* :mod:`repro.server.loadgen` -- the multi-process load generator
  replaying simulator-produced trace files.

``repro serve`` and ``repro loadgen`` are the CLI front ends.
"""

from repro.server.client import (
    CircuitBreaker,
    DebugClient,
    FeedReply,
    RetryPolicy,
    SessionFeed,
)
from repro.server.loadgen import (
    NetworkLoadReport,
    NetworkTransport,
    run_network_load_test,
)
from repro.server.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.server.protocol import (
    FrameAssembler,
    WireFrame,
    encode_frame,
)
from repro.server.server import (
    DebugServer,
    ServeContext,
    ServerConfig,
    ServerThread,
)

__all__ = [
    "CircuitBreaker",
    "Counter",
    "DebugClient",
    "DebugServer",
    "FeedReply",
    "FrameAssembler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NetworkLoadReport",
    "NetworkTransport",
    "RetryPolicy",
    "ServeContext",
    "ServerConfig",
    "ServerThread",
    "SessionFeed",
    "WireFrame",
    "encode_frame",
    "run_network_load_test",
]
