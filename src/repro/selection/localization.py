"""Path localization from observed traces (Section 5.2).

During debug the validator sees only the *projection* of the failing
execution onto the traced messages.  Localization asks: *how many paths
of the interleaved flow are consistent with that observation?*  The
fewer, the better -- the paper reports needing to explore no more than
6.11% of interleaved-flow paths without packing and 0.31% with packing.

A path is **consistent** with an observation ``O`` when the subsequence
of its labels that are visible (traced) equals ``O`` exactly
(``mode="exact"``), starts with ``O`` (``mode="prefix"`` -- the
default, modelling a deep trace buffer read at the moment a bug
symptom fires), or *contains* ``O`` as a contiguous run of visible
messages (``mode="window"`` -- a depth-limited ring buffer that only
retained the last ``depth`` captures).  Non-traced labels are free.

Counting never enumerates paths.  Prefix/exact modes run a *forward*
DP whose state is a :class:`DPFrontier`: the weight of every product
state reachable by consuming the observation so far.  The frontier is
keyed by the interleaved flow's *interned state IDs* (dense integers,
see :mod:`repro.core.interleave`), so each DP step is integer-indexed
array walking rather than tuple hashing.  The frontier is exposed
stepwise (:meth:`PathLocalizer.initial_frontier`,
:meth:`PathLocalizer.advance_frontier`) so that
:class:`repro.stream.incremental.IncrementalLocalizer` can carry it
across captures arriving over time; the batch :meth:`PathLocalizer.
localize` is a thin wrapper that replays the observation through the
same hooks.  Window mode composes the interleaved DAG with the KMP
failure automaton of the observed window, whose determinism makes the
count exact (each path maps to exactly one automaton state sequence --
no double counting when the window could match at several offsets);
the failure table can be grown online (:func:`kmp_extend`) and handed
back to :meth:`PathLocalizer.window_count`.

Two engines implement the forward DP.  The **dense** engine (the
default) compiles the CSR adjacency into per-message transition
operators and an invisible-closure matrix (:mod:`repro.selection.
kernels`) so advancing is a handful of vectorized gather/scatter-add
calls per symbol and a whole chunk can be consumed in one
:meth:`PathLocalizer.advance_many` invocation; compiled tables are
shared across sessions and server shards through a content-addressed
registry.  The **reference** engine is the historical dict walk, kept
as the escape hatch (``REPRO_LOCALIZE_ENGINE=reference``) and as the
equality oracle -- both produce bit-identical frontiers and counts on
every prefix.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import perf
from repro.core.execution import underlying_message
from repro.core.interleave import InterleavedFlow
from repro.core.message import IndexedMessage, Message
from repro.errors import FrontierOverflowError, SelectionError
from repro.selection import kernels
from repro.selection.packing import expand_subgroups

#: The localization modes :meth:`PathLocalizer.localize` understands.
MODES = ("prefix", "exact", "window")

#: Identical windows whose composed-DP memo tables stay cached per
#: localizer (repeated SNAPSHOTs on idle sessions hit, a scan of many
#: distinct windows stays bounded).
_WINDOW_MEMO_SLOTS = 16


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of localizing one observed trace.

    Attributes
    ----------
    consistent_paths:
        Paths of the interleaved flow whose visible projection equals
        the observation.
    total_paths:
        All paths of the interleaved flow.
    """

    consistent_paths: int
    total_paths: int

    @property
    def fraction(self) -> float:
        """Paths to explore as a fraction of all paths (lower = better)."""
        if self.total_paths == 0:
            return 0.0
        return self.consistent_paths / self.total_paths

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.consistent_paths}/{self.total_paths} paths "
            f"({self.fraction:.4%})"
        )


@dataclass(frozen=True)
class DPFrontier:
    """Forward localization-DP state after consuming ``length`` symbols.

    Both maps are keyed by the interleaved flow's **interned state
    IDs** (``InterleavedFlow.state_id``/``state_at`` convert to and
    from product-state tuples when needed).

    Attributes
    ----------
    matched:
        Weight per state ID of path-prefixes whose *last edge*
        consumed the newest observed symbol (for ``length == 0``: the
        initial states with weight 1).  ``prefix``-mode counts hang off
        this map: each weighted state contributes ``weight x
        paths_to_stop``.
    closed:
        ``matched`` propagated forward along non-traced (invisible)
        edges -- the states from which the *next* observed symbol may
        be consumed.  ``exact``-mode counts sum ``closed`` over stop
        states.
    length:
        Observed symbols consumed so far.
    """

    matched: Mapping[int, int]
    closed: Mapping[int, int]
    length: int

    @property
    def size(self) -> int:
        """Number of live product states (the memory the frontier pins)."""
        return len(self.closed)

    @property
    def is_dead(self) -> bool:
        """No path is consistent with the observation any more."""
        return not self.closed


@dataclass(frozen=True)
class AdvanceOutcome:
    """What one :meth:`PathLocalizer.advance_many` call did.

    Attributes
    ----------
    frontier:
        The frontier after every symbol of the batch was consumed.
    consumed:
        Symbols consumed (the whole batch on a normal return; on the
        error paths the partial count travels on the exception).
    peak_size:
        The largest intermediate frontier size observed while stepping
        through the batch (the per-record peak a bounded session must
        account for even when the final frontier shrank again).
    """

    frontier: DPFrontier
    consumed: int
    peak_size: int


@dataclass(frozen=True)
class _Adjacency:
    """Edges split by trace-buffer visibility, indexed by state ID.

    ``visible[sid]`` holds ``(message_id, target_id)`` pairs;
    ``invisible[sid]`` holds bare target IDs.  Built once per
    localizer straight off the interleaved flow's CSR arrays.
    """

    visible: Tuple[Tuple[Tuple[int, int], ...], ...]
    invisible: Tuple[Tuple[int, ...], ...]


class PathLocalizer:
    """Counts interleaved-flow paths consistent with observed traces.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow.
    traced:
        The traced message set (Step 2 selection plus packed groups;
        sub-groups are expanded to their parents for visibility).
    engine:
        ``"dense"`` (compiled kernels, the default) or ``"reference"``
        (the historical dict walk); omitted, the
        ``REPRO_LOCALIZE_ENGINE`` environment variable decides.  Both
        engines produce bit-identical frontiers and counts.
    registry:
        The :class:`~repro.selection.kernels.TableRegistry` the dense
        engine resolves its compiled tables from; omitted, the
        process-wide shared registry -- which is what lets every
        session and server shard over the same ``(scenario, visible
        set)`` reuse one read-only table set.
    """

    def __init__(
        self,
        interleaved: InterleavedFlow,
        traced: Iterable[Message],
        engine: Optional[str] = None,
        registry: Optional["kernels.TableRegistry"] = None,
    ) -> None:
        self.interleaved = interleaved
        expanded = expand_subgroups(traced, interleaved.messages)
        self._visible: Set[Message] = set(expanded)
        self._total = interleaved.count_paths()
        self._adjacency: Optional[_Adjacency] = None
        self._topo_position: Optional[List[int]] = None
        self._initial_frontier: Optional[DPFrontier] = None
        self.engine = kernels.resolve_engine_name(engine)
        self._registry = (
            registry if registry is not None else kernels.default_registry()
        )
        self._tables: Optional[kernels.CompiledTables] = None
        # memoized window-mode composed-DP tables, LRU-keyed by the
        # observed window; the lock only guards the cache (the shared
        # localizer is fed from many session threads), never the DP
        self._window_memo: "OrderedDict[Tuple[object, ...], Dict[Tuple[int, int], int]]" = (
            OrderedDict()
        )
        self._window_memo_lock = threading.Lock()
        # message-ID views of the traced set: visibility per message ID,
        # and the instance IDs of each plain (un-indexed) message
        table = interleaved.indexed_messages
        self._visible_mid: Tuple[bool, ...] = tuple(
            m.message in self._visible for m in table
        )
        self._mids_by_plain: Dict[Message, Tuple[int, ...]] = {}
        for mid, m in enumerate(table):
            self._mids_by_plain.setdefault(m.message, ())
            self._mids_by_plain[m.message] += (mid,)

    @property
    def total_paths(self) -> int:
        return self._total

    def is_visible(self, label: object) -> bool:
        """Whether an edge label would be captured by the trace buffer."""
        return underlying_message(label) in self._visible

    def localize(
        self, observed: Sequence[object], mode: str = "prefix"
    ) -> LocalizationResult:
        """Count paths whose visible projection matches *observed*.

        *observed* items may be :class:`IndexedMessage` (exact instance
        match -- tagging keeps indices observable) or plain
        :class:`Message` (any instance matches).

        Parameters
        ----------
        observed:
            The captured trace-buffer content, oldest first.
        mode:
            ``"prefix"`` (default): the observation is a prefix of the
            path's visible projection -- a snapshot taken when a bug
            symptom fired.  ``"exact"``: the projection must equal the
            observation -- a complete run's capture.  ``"window"``: the
            observation is a contiguous run somewhere in the visible
            projection -- a depth-limited ring buffer (requires a fully
            indexed observation).

        Raises
        ------
        SelectionError
            If the observation contains a message that is not traced
            (the buffer could never have captured it), or *mode* is
            unknown, or window mode receives un-indexed items.
        """
        if mode not in MODES:
            raise SelectionError(
                f"unknown localization mode {mode!r}; "
                "choose 'prefix', 'exact', or 'window'"
            )
        for item in observed:
            if not self.is_visible(item):
                raise SelectionError(
                    f"observed message {item!r} is not in the traced set"
                )
        observation: Tuple[object, ...] = tuple(observed)
        if mode == "window":
            count = self.window_count(observation)
        else:
            frontier = self.advance_many(
                self.initial_frontier(), observation
            ).frontier
            count = (
                self.prefix_count(frontier)
                if mode == "prefix"
                else self.exact_count(frontier)
            )
        return LocalizationResult(consistent_paths=count, total_paths=self._total)

    def warm(self) -> "PathLocalizer":
        """Eagerly build every lazily-constructed table (the visibility
        -split adjacency, the topological index, the stop-path counts,
        and the initial frontier's invisible closure).

        All of these are built on first use anyway; a long-lived host
        that shares one localizer across many sessions (e.g. a debug
        -server shard) calls this once at startup so the cost lands
        there instead of inside the first request's latency.  Returns
        ``self`` so construction and warming chain.

        On the dense engine this *delegates to the table registry*:
        the compiled operators and closure matrix are resolved by
        content hash, so the second shard (or session manager) warming
        the same ``(scenario, visible set)`` gets the first one's
        tables back instead of compiling again.
        """
        self._split_adjacency()
        self._topological_position()
        self.interleaved.paths_to_stop_ids()
        self.initial_frontier()
        if self.engine == "dense":
            self._compiled_tables()
        return self

    def fingerprint(self) -> str:
        """Content hash of ``(scenario, visible set)``.

        Delegates to :func:`repro.selection.kernels.table_fingerprint`:
        two localizers over structurally identical products with the
        same traced set share it regardless of process or hash seed.
        The session store stamps it into every snapshot so recovery can
        refuse state written against a different scenario or traced
        set.
        """
        return kernels.table_fingerprint(self.interleaved, self._visible_mid)

    # ------------------------------------------------------------------
    # stepwise DP hooks (prefix/exact modes)
    # ------------------------------------------------------------------
    def initial_frontier(self) -> DPFrontier:
        """The frontier before any symbol has been observed.

        Computed once and cached: it only depends on the scenario and
        the traced set, and its invisible-closure walk is as expensive
        as a wide DP step -- a per-session cost that matters when a
        server shard opens thousands of short sessions.  Frontiers are
        treated as immutable everywhere, so sharing the instance is
        safe.
        """
        cached = self._initial_frontier
        if cached is None:
            matched = {sid: 1 for sid in self.interleaved.initial_ids}
            cached = DPFrontier(
                matched=matched,
                closed=self._invisible_closure(matched),
                length=0,
            )
            self._initial_frontier = cached
        return cached

    def advance_frontier(
        self, frontier: DPFrontier, symbol: object
    ) -> DPFrontier:
        """Consume one observed *symbol*: O(frontier x out-degree).

        Raises :class:`~repro.errors.SelectionError` when *symbol* is
        not in the traced set (the buffer could never have captured
        it) -- the same guard the batch API applies up front.
        """
        if self.engine == "dense":
            return self.advance_many(frontier, (symbol,)).frontier
        return self._advance_reference(frontier, symbol)

    def advance_many(
        self,
        frontier: DPFrontier,
        symbols: Sequence[object],
        max_frontier: Optional[int] = None,
    ) -> AdvanceOutcome:
        """Consume a whole batch of observed *symbols*, oldest first.

        On the dense engine the frontier is scattered into a weight
        vector once, every symbol is one kernel step, and the sparse
        frontier maps are harvested once at the end -- so a FEED chunk
        costs chunk-many gather/scatter calls instead of chunk-many
        dict walks.  The reference engine replays
        :meth:`advance_frontier` per symbol; both produce bit-identical
        outcomes.

        ``max_frontier`` bounds every *intermediate* frontier: the
        batch stops *before* the first symbol whose frontier would
        exceed it and raises :class:`~repro.errors.
        FrontierOverflowError`.  Untraced symbols raise
        :class:`~repro.errors.SelectionError` as always.  Both
        exceptions carry the partial progress -- ``.frontier`` (the
        last consistent frontier), ``.consumed`` and ``.peak_size`` --
        so a streaming caller can keep the valid prefix of the batch.
        """
        items = list(symbols)
        if self.engine != "dense":
            return self._advance_many_reference(items, frontier, max_frontier)
        return self._advance_many_dense(items, frontier, max_frontier)

    def _advance_many_reference(
        self,
        items: List[object],
        frontier: DPFrontier,
        max_frontier: Optional[int],
    ) -> AdvanceOutcome:
        consumed = 0
        peak = frontier.size
        for symbol in items:
            try:
                advanced = self._advance_reference(frontier, symbol)
            except SelectionError as exc:
                raise _attach_progress(exc, frontier, consumed, peak)
            if max_frontier is not None and advanced.size > max_frontier:
                raise _attach_progress(
                    FrontierOverflowError(
                        f"frontier grew to {advanced.size} states, over "
                        f"max_frontier={max_frontier}"
                    ),
                    frontier,
                    consumed,
                    peak,
                )
            frontier = advanced
            consumed += 1
            peak = max(peak, advanced.size)
        return AdvanceOutcome(frontier=frontier, consumed=consumed, peak_size=peak)

    def _advance_many_dense(
        self,
        items: List[object],
        frontier: DPFrontier,
        max_frontier: Optional[int],
    ) -> AdvanceOutcome:
        tables = self._compiled_tables()
        consumed = 0
        peak = frontier.size
        length = frontier.length
        dead = frontier.is_dead
        vec = None  # dense closure vector, scattered lazily
        step: Optional[kernels._StepResult] = None
        died = False  # a consumed symbol killed the frontier

        def snap() -> DPFrontier:
            """The current frontier, materialized back to sparse maps."""
            if died:
                return DPFrontier(matched={}, closed={}, length=length)
            if step is None:
                return frontier  # nothing consumed yet (length unchanged)
            return DPFrontier(
                matched=tables.harvest(step.matched),
                closed=tables.harvest(step.closed),
                length=length,
            )

        try:
            for symbol in items:
                if not self.is_visible(symbol):
                    raise _attach_progress(
                        SelectionError(
                            f"observed message {symbol!r} is not in the "
                            "traced set"
                        ),
                        snap(),
                        consumed,
                        peak,
                    )
                if dead:
                    # dead frontiers stay dead; only validation remains
                    died = True
                    step = None
                    length += 1
                    consumed += 1
                    continue
                if vec is None:
                    vec = tables.scatter(frontier.closed)
                result = tables.advance(vec, self._operator(tables, symbol))
                if max_frontier is not None and result.size > max_frontier:
                    raise _attach_progress(
                        FrontierOverflowError(
                            f"frontier grew to {result.size} states, over "
                            f"max_frontier={max_frontier}"
                        ),
                        snap(),
                        consumed,
                        peak,
                    )
                step = result
                vec = result.closed
                length += 1
                consumed += 1
                peak = max(peak, result.size)
                dead = result.size == 0
            return AdvanceOutcome(
                frontier=snap(), consumed=consumed, peak_size=peak
            )
        finally:
            if perf.enabled():
                perf.add("localize_kernel_batches")
                perf.add("localize_kernel_symbols", consumed)

    def _operator(
        self, tables: "kernels.CompiledTables", symbol: object
    ) -> Optional["kernels._Operator"]:
        """The compiled transition operator the observed *symbol*
        selects (``None`` -- no product edge carries it, the step is
        dead) -- the dense mirror of :meth:`_matching_message_ids`."""
        if isinstance(symbol, IndexedMessage):
            mid = self.interleaved.message_id(symbol)
            return None if mid is None else tables.op_by_mid.get(mid)
        if isinstance(symbol, Message):
            return tables.op_by_plain.get(symbol)
        raise TypeError(f"not a message: {symbol!r}")

    def _compiled_tables(self) -> "kernels.CompiledTables":
        """This localizer's dense tables, resolved (once) through the
        content-addressed registry."""
        if self._tables is None:
            self._tables = self._registry.get(
                self.interleaved, self._visible_mid
            )
        return self._tables

    def _advance_reference(
        self, frontier: DPFrontier, symbol: object
    ) -> DPFrontier:
        """The historical dict-walk DP step (the equality oracle the
        dense kernels are property-tested against)."""
        if not self.is_visible(symbol):
            raise SelectionError(
                f"observed message {symbol!r} is not in the traced set"
            )
        adjacency = self._split_adjacency()
        match_mids = self._matching_message_ids(symbol)
        matched: Dict[int, int] = {}
        steps = 0
        for sid, weight in frontier.closed.items():
            edges = adjacency.visible[sid]
            steps += len(edges)
            for mid, target_id in edges:
                if mid in match_mids:
                    matched[target_id] = matched.get(target_id, 0) + weight
        if perf.enabled():
            perf.add("localize_dp_steps", steps)
        return DPFrontier(
            matched=matched,
            closed=self._invisible_closure(matched),
            length=frontier.length + 1,
        )

    def prefix_count(self, frontier: DPFrontier) -> int:
        """Paths whose visible projection *starts with* the consumed
        observation: every minimally-matched prefix times any
        continuation to a stop state."""
        to_stop = self.interleaved.paths_to_stop_ids()
        return sum(
            weight * to_stop[sid]
            for sid, weight in frontier.matched.items()
        )

    def exact_count(self, frontier: DPFrontier) -> int:
        """Paths whose visible projection *equals* the consumed
        observation: matched prefixes that reach a stop state through
        invisible edges only."""
        stop_ids = self.interleaved.stop_ids
        return sum(
            weight
            for sid, weight in frontier.closed.items()
            if sid in stop_ids
        )

    # ------------------------------------------------------------------
    # window mode (KMP-composed DP)
    # ------------------------------------------------------------------
    def window_count(
        self,
        observation: Tuple[object, ...],
        failure: Optional[Sequence[int]] = None,
    ) -> int:
        """Paths whose visible projection contains *observation* as a
        contiguous run, via the KMP automaton (deterministic, so every
        path is counted exactly once even when the window could match
        at several offsets).

        *failure* may supply a precomputed KMP failure table for the
        observation (e.g. one grown online with :func:`kmp_extend`);
        omitted, it is built here.

        The per-``(state, automaton-state)`` count table is memoized
        across calls with an identical window (bounded LRU), so
        repeated SNAPSHOT requests on an idle session reread the memo
        instead of redoing the composed DP.
        """
        for item in observation:
            if not isinstance(item, IndexedMessage):
                raise SelectionError(
                    "window-mode localization needs a fully indexed "
                    f"observation; got {item!r}"
                )
        if not observation:
            return self._total
        step = _kmp_transition(observation, failure)
        accept = len(observation)
        offsets, msg_ids, targets = self.interleaved.csr_adjacency()
        message_table = self.interleaved.indexed_messages
        visible_mid = self._visible_mid
        to_stop = self.interleaved.paths_to_stop_ids()
        memo_key = tuple(observation)
        with self._window_memo_lock:
            cached = self._window_memo.get(memo_key)
            if cached is not None:
                self._window_memo.move_to_end(memo_key)
        if cached is not None:
            # a published memo is complete for everything reachable
            # from the initial states, so replaying it is pure lookups
            perf.add("localize_window_memo_hits")
        memo: Dict[Tuple[int, int], int] = (
            cached if cached is not None else {}
        )

        def count(sid: int, k: int) -> int:
            if k == accept:
                # absorbing: any continuation is consistent
                return to_stop[sid]
            key = (sid, k)
            cached = memo.get(key)
            if cached is not None:
                return cached
            total = 0
            for e in range(offsets[sid], offsets[sid + 1]):
                mid = msg_ids[e]
                if visible_mid[mid]:
                    total += count(targets[e], step(k, message_table[mid]))
                else:
                    total += count(targets[e], k)
            memo[key] = total
            return total

        result = sum(count(sid, 0) for sid in self.interleaved.initial_ids)
        if cached is None:
            if perf.enabled():
                perf.add("localize_dp_steps", len(memo))
            with self._window_memo_lock:
                self._window_memo[memo_key] = memo
                self._window_memo.move_to_end(memo_key)
                while len(self._window_memo) > _WINDOW_MEMO_SLOTS:
                    self._window_memo.popitem(last=False)
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _matching_message_ids(self, symbol: object) -> FrozenSet[int]:
        """Message IDs of edge labels the observed *symbol* matches:
        one for an indexed symbol, every instance for a plain one."""
        if isinstance(symbol, IndexedMessage):
            mid = self.interleaved.message_id(symbol)
            return frozenset() if mid is None else frozenset((mid,))
        if isinstance(symbol, Message):
            return frozenset(self._mids_by_plain.get(symbol, ()))
        raise TypeError(f"not a message: {symbol!r}")

    def _split_adjacency(self) -> _Adjacency:
        """Outgoing edges per state ID, split by visibility (lazy,
        built once per localizer -- visibility is fixed)."""
        if self._adjacency is None:
            offsets, msg_ids, targets = self.interleaved.csr_adjacency()
            visible_mid = self._visible_mid
            visible: List[Tuple[Tuple[int, int], ...]] = []
            invisible: List[Tuple[int, ...]] = []
            for sid in range(len(offsets) - 1):
                vis: List[Tuple[int, int]] = []
                invis: List[int] = []
                for e in range(offsets[sid], offsets[sid + 1]):
                    mid = msg_ids[e]
                    if visible_mid[mid]:
                        vis.append((mid, targets[e]))
                    else:
                        invis.append(targets[e])
                visible.append(tuple(vis))
                invisible.append(tuple(invis))
            self._adjacency = _Adjacency(tuple(visible), tuple(invisible))
        return self._adjacency

    def _topological_position(self) -> List[int]:
        """``position[sid]`` = rank of state ID *sid* in topological
        order."""
        if self._topo_position is None:
            order = self.interleaved.topological_ids()
            position = [0] * len(order)
            for i, sid in enumerate(order):
                position[sid] = i
            self._topo_position = position
        return self._topo_position

    def _invisible_closure(
        self, weights: Mapping[int, int]
    ) -> Dict[int, int]:
        """Propagate *weights* forward along invisible edges (each
        invisible path counted once -- relaxation in topological
        order over the reachable sub-DAG only)."""
        if not weights:
            return {}
        position = self._topological_position()
        adjacency = self._split_adjacency()
        closed: Dict[int, int] = dict(weights)
        heap = [(position[sid], sid) for sid in closed]
        heapq.heapify(heap)
        done: Set[int] = set()
        while heap:
            _, sid = heapq.heappop(heap)
            if sid in done:
                continue
            done.add(sid)
            weight = closed[sid]
            for target_id in adjacency.invisible[sid]:
                if target_id not in closed:
                    closed[target_id] = 0
                    heapq.heappush(heap, (position[target_id], target_id))
                closed[target_id] += weight
        return closed


def _attach_progress(
    exc: Exception, frontier: DPFrontier, consumed: int, peak: int
) -> Exception:
    """Attach batch progress to an exception escaping
    :meth:`PathLocalizer.advance_many`, so streaming callers can keep
    the valid prefix of a partially-consumed chunk."""
    exc.frontier = frontier  # type: ignore[attr-defined]
    exc.consumed = consumed  # type: ignore[attr-defined]
    exc.peak_size = peak  # type: ignore[attr-defined]
    return exc


# ----------------------------------------------------------------------
# KMP machinery (window mode)
# ----------------------------------------------------------------------
def kmp_extend(
    pattern: List[object], failure: List[int], symbol: object
) -> None:
    """Append *symbol* to *pattern*, extending *failure* in place.

    This is the online step of the classic failure-function
    construction: O(1) amortized, and the table built by repeated
    extension is identical to :func:`kmp_failure` on the final
    pattern -- which is what lets a streaming window observation grow
    without rebuilding the automaton.
    """
    if not pattern:
        pattern.append(symbol)
        failure.append(0)
        return
    k = failure[-1]
    while k > 0 and symbol != pattern[k]:
        k = failure[k - 1]
    if symbol == pattern[k]:
        k += 1
    pattern.append(symbol)
    failure.append(k)


def kmp_failure(pattern: Sequence[object]) -> List[int]:
    """The KMP failure table of *pattern* (exact equality on items)."""
    grown: List[object] = []
    failure: List[int] = []
    for symbol in pattern:
        kmp_extend(grown, failure, symbol)
    return failure


def _kmp_transition(
    pattern: Tuple[object, ...], failure: Optional[Sequence[int]] = None
):
    """The KMP transition function ``step(state, symbol) -> state`` for
    *pattern* (exact equality on indexed messages)."""
    n = len(pattern)
    if failure is None:
        failure = kmp_failure(pattern)

    def step(state: int, symbol: object) -> int:
        if state == n:
            return n
        while state > 0 and symbol != pattern[state]:
            state = failure[state - 1]
        if symbol == pattern[state]:
            state += 1
        return state

    return step


def localize_trace(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    observed: Sequence[object],
    mode: str = "prefix",
) -> LocalizationResult:
    """Functional one-shot wrapper around :class:`PathLocalizer`."""
    return PathLocalizer(interleaved, traced).localize(observed, mode=mode)
