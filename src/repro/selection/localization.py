"""Path localization from observed traces (Section 5.2).

During debug the validator sees only the *projection* of the failing
execution onto the traced messages.  Localization asks: *how many paths
of the interleaved flow are consistent with that observation?*  The
fewer, the better -- the paper reports needing to explore no more than
6.11% of interleaved-flow paths without packing and 0.31% with packing.

A path is **consistent** with an observation ``O`` when the subsequence
of its labels that are visible (traced) equals ``O`` exactly
(``mode="exact"``), starts with ``O`` (``mode="prefix"`` -- the
default, modelling a deep trace buffer read at the moment a bug
symptom fires), or *contains* ``O`` as a contiguous run of visible
messages (``mode="window"`` -- a depth-limited ring buffer that only
retained the last ``depth`` captures).  Non-traced labels are free.

Counting never enumerates paths.  Prefix/exact modes run a *forward*
DP whose state is a :class:`DPFrontier`: the weight of every product
state reachable by consuming the observation so far.  The frontier is
exposed stepwise (:meth:`PathLocalizer.initial_frontier`,
:meth:`PathLocalizer.advance_frontier`) so that
:class:`repro.stream.incremental.IncrementalLocalizer` can carry it
across captures arriving over time; the batch :meth:`PathLocalizer.
localize` is a thin wrapper that replays the observation through the
same hooks.  Window mode composes the interleaved DAG with the KMP
failure automaton of the observed window, whose determinism makes the
count exact (each path maps to exactly one automaton state sequence --
no double counting when the window could match at several offsets);
the failure table can be grown online (:func:`kmp_extend`) and handed
back to :meth:`PathLocalizer.window_count`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.execution import underlying_message
from repro.core.interleave import InterleavedFlow, ProductState
from repro.core.message import IndexedMessage, Message
from repro.errors import SelectionError
from repro.selection.packing import expand_subgroups

#: The localization modes :meth:`PathLocalizer.localize` understands.
MODES = ("prefix", "exact", "window")


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of localizing one observed trace.

    Attributes
    ----------
    consistent_paths:
        Paths of the interleaved flow whose visible projection equals
        the observation.
    total_paths:
        All paths of the interleaved flow.
    """

    consistent_paths: int
    total_paths: int

    @property
    def fraction(self) -> float:
        """Paths to explore as a fraction of all paths (lower = better)."""
        if self.total_paths == 0:
            return 0.0
        return self.consistent_paths / self.total_paths

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.consistent_paths}/{self.total_paths} paths "
            f"({self.fraction:.4%})"
        )


@dataclass(frozen=True)
class DPFrontier:
    """Forward localization-DP state after consuming ``length`` symbols.

    Attributes
    ----------
    matched:
        Weight per product state of path-prefixes whose *last edge*
        consumed the newest observed symbol (for ``length == 0``: the
        initial states with weight 1).  ``prefix``-mode counts hang off
        this map: each weighted state contributes ``weight x
        paths_to_stop``.
    closed:
        ``matched`` propagated forward along non-traced (invisible)
        edges -- the states from which the *next* observed symbol may
        be consumed.  ``exact``-mode counts sum ``closed`` over stop
        states.
    length:
        Observed symbols consumed so far.
    """

    matched: Mapping[ProductState, int]
    closed: Mapping[ProductState, int]
    length: int

    @property
    def size(self) -> int:
        """Number of live product states (the memory the frontier pins)."""
        return len(self.closed)

    @property
    def is_dead(self) -> bool:
        """No path is consistent with the observation any more."""
        return not self.closed


@dataclass(frozen=True)
class _Adjacency:
    """Per-state edges split by trace-buffer visibility."""

    visible: Tuple[Tuple[IndexedMessage, ProductState], ...]
    invisible: Tuple[ProductState, ...]


class PathLocalizer:
    """Counts interleaved-flow paths consistent with observed traces.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow.
    traced:
        The traced message set (Step 2 selection plus packed groups;
        sub-groups are expanded to their parents for visibility).
    """

    def __init__(
        self, interleaved: InterleavedFlow, traced: Iterable[Message]
    ) -> None:
        self.interleaved = interleaved
        expanded = expand_subgroups(traced, interleaved.messages)
        self._visible: Set[Message] = set(expanded)
        self._total = interleaved.count_paths()
        self._adjacency: Optional[Dict[ProductState, _Adjacency]] = None
        self._topo_index: Optional[Dict[ProductState, int]] = None

    @property
    def total_paths(self) -> int:
        return self._total

    def is_visible(self, label: object) -> bool:
        """Whether an edge label would be captured by the trace buffer."""
        return underlying_message(label) in self._visible

    def localize(
        self, observed: Sequence[object], mode: str = "prefix"
    ) -> LocalizationResult:
        """Count paths whose visible projection matches *observed*.

        *observed* items may be :class:`IndexedMessage` (exact instance
        match -- tagging keeps indices observable) or plain
        :class:`Message` (any instance matches).

        Parameters
        ----------
        observed:
            The captured trace-buffer content, oldest first.
        mode:
            ``"prefix"`` (default): the observation is a prefix of the
            path's visible projection -- a snapshot taken when a bug
            symptom fired.  ``"exact"``: the projection must equal the
            observation -- a complete run's capture.  ``"window"``: the
            observation is a contiguous run somewhere in the visible
            projection -- a depth-limited ring buffer (requires a fully
            indexed observation).

        Raises
        ------
        SelectionError
            If the observation contains a message that is not traced
            (the buffer could never have captured it), or *mode* is
            unknown, or window mode receives un-indexed items.
        """
        if mode not in MODES:
            raise SelectionError(
                f"unknown localization mode {mode!r}; "
                "choose 'prefix', 'exact', or 'window'"
            )
        for item in observed:
            if not self.is_visible(item):
                raise SelectionError(
                    f"observed message {item!r} is not in the traced set"
                )
        observation: Tuple[object, ...] = tuple(observed)
        if mode == "window":
            count = self.window_count(observation)
        else:
            frontier = self.initial_frontier()
            for item in observation:
                frontier = self.advance_frontier(frontier, item)
            count = (
                self.prefix_count(frontier)
                if mode == "prefix"
                else self.exact_count(frontier)
            )
        return LocalizationResult(consistent_paths=count, total_paths=self._total)

    # ------------------------------------------------------------------
    # stepwise DP hooks (prefix/exact modes)
    # ------------------------------------------------------------------
    def initial_frontier(self) -> DPFrontier:
        """The frontier before any symbol has been observed."""
        matched = {state: 1 for state in self.interleaved.initial}
        return DPFrontier(
            matched=matched,
            closed=self._invisible_closure(matched),
            length=0,
        )

    def advance_frontier(
        self, frontier: DPFrontier, symbol: object
    ) -> DPFrontier:
        """Consume one observed *symbol*: O(frontier x out-degree).

        Raises :class:`~repro.errors.SelectionError` when *symbol* is
        not in the traced set (the buffer could never have captured
        it) -- the same guard the batch API applies up front.
        """
        if not self.is_visible(symbol):
            raise SelectionError(
                f"observed message {symbol!r} is not in the traced set"
            )
        adjacency = self._split_adjacency()
        matched: Dict[ProductState, int] = {}
        for state, weight in frontier.closed.items():
            for label, target in adjacency[state].visible:
                if _matches(symbol, label):
                    matched[target] = matched.get(target, 0) + weight
        return DPFrontier(
            matched=matched,
            closed=self._invisible_closure(matched),
            length=frontier.length + 1,
        )

    def prefix_count(self, frontier: DPFrontier) -> int:
        """Paths whose visible projection *starts with* the consumed
        observation: every minimally-matched prefix times any
        continuation to a stop state."""
        to_stop = self.interleaved.paths_to_stop()
        return sum(
            weight * to_stop.get(state, 0)
            for state, weight in frontier.matched.items()
        )

    def exact_count(self, frontier: DPFrontier) -> int:
        """Paths whose visible projection *equals* the consumed
        observation: matched prefixes that reach a stop state through
        invisible edges only."""
        stop = self.interleaved.stop
        return sum(
            weight
            for state, weight in frontier.closed.items()
            if state in stop
        )

    # ------------------------------------------------------------------
    # window mode (KMP-composed DP)
    # ------------------------------------------------------------------
    def window_count(
        self,
        observation: Tuple[object, ...],
        failure: Optional[Sequence[int]] = None,
    ) -> int:
        """Paths whose visible projection contains *observation* as a
        contiguous run, via the KMP automaton (deterministic, so every
        path is counted exactly once even when the window could match
        at several offsets).

        *failure* may supply a precomputed KMP failure table for the
        observation (e.g. one grown online with :func:`kmp_extend`);
        omitted, it is built here.
        """
        for item in observation:
            if not isinstance(item, IndexedMessage):
                raise SelectionError(
                    "window-mode localization needs a fully indexed "
                    f"observation; got {item!r}"
                )
        if not observation:
            return self._total
        step = _kmp_transition(observation, failure)
        accept = len(observation)
        memo: Dict[Tuple[ProductState, int], int] = {}

        def count(state: ProductState, k: int) -> int:
            if k == accept:
                # absorbing: any continuation is consistent
                return self.interleaved.paths_to_stop().get(state, 0)
            key = (state, k)
            cached = memo.get(key)
            if cached is not None:
                return cached
            total = 0
            for t in self.interleaved.outgoing(state):
                if self.is_visible(t.message):
                    total += count(t.target, step(k, t.message))
                else:
                    total += count(t.target, k)
            memo[key] = total
            return total

        return sum(count(start, 0) for start in self.interleaved.initial)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _split_adjacency(self) -> Dict[ProductState, _Adjacency]:
        """Outgoing edges per state, split by visibility (lazy, built
        once per localizer -- visibility is fixed)."""
        if self._adjacency is None:
            table: Dict[ProductState, _Adjacency] = {}
            for state in self.interleaved.states:
                visible: List[Tuple[IndexedMessage, ProductState]] = []
                invisible: List[ProductState] = []
                for t in self.interleaved.outgoing(state):
                    if self.is_visible(t.message):
                        visible.append((t.message, t.target))
                    else:
                        invisible.append(t.target)
                table[state] = _Adjacency(tuple(visible), tuple(invisible))
            self._adjacency = table
        return self._adjacency

    def _topological_index(self) -> Dict[ProductState, int]:
        if self._topo_index is None:
            self._topo_index = {
                state: i
                for i, state in enumerate(self.interleaved.topological_order())
            }
        return self._topo_index

    def _invisible_closure(
        self, weights: Mapping[ProductState, int]
    ) -> Dict[ProductState, int]:
        """Propagate *weights* forward along invisible edges (each
        invisible path counted once -- relaxation in topological
        order over the reachable sub-DAG only)."""
        if not weights:
            return {}
        topo = self._topological_index()
        adjacency = self._split_adjacency()
        closed: Dict[ProductState, int] = dict(weights)
        heap = [(topo[state], state) for state in closed]
        heapq.heapify(heap)
        done: Set[ProductState] = set()
        while heap:
            _, state = heapq.heappop(heap)
            if state in done:
                continue
            done.add(state)
            weight = closed[state]
            for target in adjacency[state].invisible:
                if target not in closed:
                    closed[target] = 0
                    heapq.heappush(heap, (topo[target], target))
                closed[target] += weight
        return closed


# ----------------------------------------------------------------------
# KMP machinery (window mode)
# ----------------------------------------------------------------------
def kmp_extend(
    pattern: List[object], failure: List[int], symbol: object
) -> None:
    """Append *symbol* to *pattern*, extending *failure* in place.

    This is the online step of the classic failure-function
    construction: O(1) amortized, and the table built by repeated
    extension is identical to :func:`kmp_failure` on the final
    pattern -- which is what lets a streaming window observation grow
    without rebuilding the automaton.
    """
    if not pattern:
        pattern.append(symbol)
        failure.append(0)
        return
    k = failure[-1]
    while k > 0 and symbol != pattern[k]:
        k = failure[k - 1]
    if symbol == pattern[k]:
        k += 1
    pattern.append(symbol)
    failure.append(k)


def kmp_failure(pattern: Sequence[object]) -> List[int]:
    """The KMP failure table of *pattern* (exact equality on items)."""
    grown: List[object] = []
    failure: List[int] = []
    for symbol in pattern:
        kmp_extend(grown, failure, symbol)
    return failure


def _kmp_transition(
    pattern: Tuple[object, ...], failure: Optional[Sequence[int]] = None
):
    """The KMP transition function ``step(state, symbol) -> state`` for
    *pattern* (exact equality on indexed messages)."""
    n = len(pattern)
    if failure is None:
        failure = kmp_failure(pattern)

    def step(state: int, symbol: object) -> int:
        if state == n:
            return n
        while state > 0 and symbol != pattern[state]:
            state = failure[state - 1]
        if symbol == pattern[state]:
            state += 1
        return state

    return step


def _matches(observed: object, label: IndexedMessage) -> bool:
    """Whether an observed item matches an edge label."""
    if isinstance(observed, IndexedMessage):
        return observed == label
    if isinstance(observed, Message):
        return observed == label.message
    raise TypeError(f"not a message: {observed!r}")


def localize_trace(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    observed: Sequence[object],
    mode: str = "prefix",
) -> LocalizationResult:
    """Functional one-shot wrapper around :class:`PathLocalizer`."""
    return PathLocalizer(interleaved, traced).localize(observed, mode=mode)
