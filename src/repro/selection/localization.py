"""Path localization from observed traces (Section 5.2).

During debug the validator sees only the *projection* of the failing
execution onto the traced messages.  Localization asks: *how many paths
of the interleaved flow are consistent with that observation?*  The
fewer, the better -- the paper reports needing to explore no more than
6.11% of interleaved-flow paths without packing and 0.31% with packing.

A path is **consistent** with an observation ``O`` when the subsequence
of its labels that are visible (traced) equals ``O`` exactly
(``mode="exact"``), starts with ``O`` (``mode="prefix"`` -- the
default, modelling a deep trace buffer read at the moment a bug
symptom fires), or *contains* ``O`` as a contiguous run of visible
messages (``mode="window"`` -- a depth-limited ring buffer that only
retained the last ``depth`` captures).  Non-traced labels are free.

Counting never enumerates paths: prefix/exact modes run a DP over
``(product state, matched length)``; window mode composes the
interleaved DAG with the KMP failure automaton of the observed window,
whose determinism makes the count exact (each path maps to exactly one
automaton state sequence -- no double counting when the window could
match at several offsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.core.execution import underlying_message
from repro.core.interleave import InterleavedFlow, ProductState
from repro.core.message import IndexedMessage, Message
from repro.errors import SelectionError
from repro.selection.packing import expand_subgroups


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of localizing one observed trace.

    Attributes
    ----------
    consistent_paths:
        Paths of the interleaved flow whose visible projection equals
        the observation.
    total_paths:
        All paths of the interleaved flow.
    """

    consistent_paths: int
    total_paths: int

    @property
    def fraction(self) -> float:
        """Paths to explore as a fraction of all paths (lower = better)."""
        if self.total_paths == 0:
            return 0.0
        return self.consistent_paths / self.total_paths

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.consistent_paths}/{self.total_paths} paths "
            f"({self.fraction:.4%})"
        )


class PathLocalizer:
    """Counts interleaved-flow paths consistent with observed traces.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow.
    traced:
        The traced message set (Step 2 selection plus packed groups;
        sub-groups are expanded to their parents for visibility).
    """

    def __init__(
        self, interleaved: InterleavedFlow, traced: Iterable[Message]
    ) -> None:
        self.interleaved = interleaved
        expanded = expand_subgroups(traced, interleaved.messages)
        self._visible: Set[Message] = set(expanded)
        self._total = interleaved.count_paths()

    @property
    def total_paths(self) -> int:
        return self._total

    def is_visible(self, label: object) -> bool:
        """Whether an edge label would be captured by the trace buffer."""
        return underlying_message(label) in self._visible

    def localize(
        self, observed: Sequence[object], mode: str = "prefix"
    ) -> LocalizationResult:
        """Count paths whose visible projection matches *observed*.

        *observed* items may be :class:`IndexedMessage` (exact instance
        match -- tagging keeps indices observable) or plain
        :class:`Message` (any instance matches).

        Parameters
        ----------
        observed:
            The captured trace-buffer content, oldest first.
        mode:
            ``"prefix"`` (default): the observation is a prefix of the
            path's visible projection -- a snapshot taken when a bug
            symptom fired.  ``"exact"``: the projection must equal the
            observation -- a complete run's capture.  ``"window"``: the
            observation is a contiguous run somewhere in the visible
            projection -- a depth-limited ring buffer (requires a fully
            indexed observation).

        Raises
        ------
        SelectionError
            If the observation contains a message that is not traced
            (the buffer could never have captured it), or *mode* is
            unknown, or window mode receives un-indexed items.
        """
        if mode not in ("prefix", "exact", "window"):
            raise SelectionError(
                f"unknown localization mode {mode!r}; "
                "choose 'prefix', 'exact', or 'window'"
            )
        for item in observed:
            if not self.is_visible(item):
                raise SelectionError(
                    f"observed message {item!r} is not in the traced set"
                )
        observation: Tuple[object, ...] = tuple(observed)
        if mode == "window":
            count = self._count_window(observation)
        else:
            memo: Dict[Tuple[ProductState, int], int] = {}
            count = sum(
                self._count(start, 0, observation, memo, mode)
                for start in self.interleaved.initial
            )
        return LocalizationResult(consistent_paths=count, total_paths=self._total)

    # ------------------------------------------------------------------
    def _count(
        self,
        state: ProductState,
        matched: int,
        observation: Tuple[object, ...],
        memo: Dict[Tuple[ProductState, int], int],
        mode: str,
    ) -> int:
        if matched == len(observation) and mode == "prefix":
            # the snapshot is fully explained; any continuation of the
            # run (visible or not) is consistent with it
            return self.interleaved.paths_to_stop().get(state, 0)
        key = (state, matched)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 0
        if matched == len(observation) and state in self.interleaved.stop:
            total += 1
        for t in self.interleaved.outgoing(state):
            if self.is_visible(t.message):
                if matched < len(observation) and _matches(
                    observation[matched], t.message
                ):
                    total += self._count(
                        t.target, matched + 1, observation, memo, mode
                    )
            else:
                total += self._count(t.target, matched, observation, memo, mode)
        memo[key] = total
        return total


    def _count_window(self, observation: Tuple[object, ...]) -> int:
        """Paths whose visible projection contains *observation* as a
        contiguous run, via the KMP automaton (deterministic, so every
        path is counted exactly once even when the window could match
        at several offsets)."""
        for item in observation:
            if not isinstance(item, IndexedMessage):
                raise SelectionError(
                    "window-mode localization needs a fully indexed "
                    f"observation; got {item!r}"
                )
        if not observation:
            return self._total
        step = _kmp_transition(observation)
        accept = len(observation)
        memo: Dict[Tuple[ProductState, int], int] = {}

        def count(state: ProductState, k: int) -> int:
            if k == accept:
                # absorbing: any continuation is consistent
                return self.interleaved.paths_to_stop().get(state, 0)
            key = (state, k)
            cached = memo.get(key)
            if cached is not None:
                return cached
            total = 0
            for t in self.interleaved.outgoing(state):
                if self.is_visible(t.message):
                    total += count(t.target, step(k, t.message))
                else:
                    total += count(t.target, k)
            memo[key] = total
            return total

        return sum(count(start, 0) for start in self.interleaved.initial)


def _kmp_transition(pattern: Tuple[object, ...]):
    """The KMP transition function ``step(state, symbol) -> state`` for
    *pattern* (exact equality on indexed messages)."""
    n = len(pattern)
    failure = [0] * n
    k = 0
    for i in range(1, n):
        while k > 0 and pattern[i] != pattern[k]:
            k = failure[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        failure[i] = k

    def step(state: int, symbol: object) -> int:
        if state == n:
            return n
        while state > 0 and symbol != pattern[state]:
            state = failure[state - 1]
        if symbol == pattern[state]:
            state += 1
        return state

    return step


def _matches(observed: object, label: IndexedMessage) -> bool:
    """Whether an observed item matches an edge label."""
    if isinstance(observed, IndexedMessage):
        return observed == label
    if isinstance(observed, Message):
        return observed == label.message
    raise TypeError(f"not a message: {observed!r}")


def localize_trace(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    observed: Sequence[object],
    mode: str = "prefix",
) -> LocalizationResult:
    """Functional one-shot wrapper around :class:`PathLocalizer`."""
    return PathLocalizer(interleaved, traced).localize(observed, mode=mode)
