"""Path localization from observed traces (Section 5.2).

During debug the validator sees only the *projection* of the failing
execution onto the traced messages.  Localization asks: *how many paths
of the interleaved flow are consistent with that observation?*  The
fewer, the better -- the paper reports needing to explore no more than
6.11% of interleaved-flow paths without packing and 0.31% with packing.

A path is **consistent** with an observation ``O`` when the subsequence
of its labels that are visible (traced) equals ``O`` exactly
(``mode="exact"``), starts with ``O`` (``mode="prefix"`` -- the
default, modelling a deep trace buffer read at the moment a bug
symptom fires), or *contains* ``O`` as a contiguous run of visible
messages (``mode="window"`` -- a depth-limited ring buffer that only
retained the last ``depth`` captures).  Non-traced labels are free.

Counting never enumerates paths.  Prefix/exact modes run a *forward*
DP whose state is a :class:`DPFrontier`: the weight of every product
state reachable by consuming the observation so far.  The frontier is
keyed by the interleaved flow's *interned state IDs* (dense integers,
see :mod:`repro.core.interleave`), so each DP step is integer-indexed
array walking rather than tuple hashing.  The frontier is exposed
stepwise (:meth:`PathLocalizer.initial_frontier`,
:meth:`PathLocalizer.advance_frontier`) so that
:class:`repro.stream.incremental.IncrementalLocalizer` can carry it
across captures arriving over time; the batch :meth:`PathLocalizer.
localize` is a thin wrapper that replays the observation through the
same hooks.  Window mode composes the interleaved DAG with the KMP
failure automaton of the observed window, whose determinism makes the
count exact (each path maps to exactly one automaton state sequence --
no double counting when the window could match at several offsets);
the failure table can be grown online (:func:`kmp_extend`) and handed
back to :meth:`PathLocalizer.window_count`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import perf
from repro.core.execution import underlying_message
from repro.core.interleave import InterleavedFlow
from repro.core.message import IndexedMessage, Message
from repro.errors import SelectionError
from repro.selection.packing import expand_subgroups

#: The localization modes :meth:`PathLocalizer.localize` understands.
MODES = ("prefix", "exact", "window")


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of localizing one observed trace.

    Attributes
    ----------
    consistent_paths:
        Paths of the interleaved flow whose visible projection equals
        the observation.
    total_paths:
        All paths of the interleaved flow.
    """

    consistent_paths: int
    total_paths: int

    @property
    def fraction(self) -> float:
        """Paths to explore as a fraction of all paths (lower = better)."""
        if self.total_paths == 0:
            return 0.0
        return self.consistent_paths / self.total_paths

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.consistent_paths}/{self.total_paths} paths "
            f"({self.fraction:.4%})"
        )


@dataclass(frozen=True)
class DPFrontier:
    """Forward localization-DP state after consuming ``length`` symbols.

    Both maps are keyed by the interleaved flow's **interned state
    IDs** (``InterleavedFlow.state_id``/``state_at`` convert to and
    from product-state tuples when needed).

    Attributes
    ----------
    matched:
        Weight per state ID of path-prefixes whose *last edge*
        consumed the newest observed symbol (for ``length == 0``: the
        initial states with weight 1).  ``prefix``-mode counts hang off
        this map: each weighted state contributes ``weight x
        paths_to_stop``.
    closed:
        ``matched`` propagated forward along non-traced (invisible)
        edges -- the states from which the *next* observed symbol may
        be consumed.  ``exact``-mode counts sum ``closed`` over stop
        states.
    length:
        Observed symbols consumed so far.
    """

    matched: Mapping[int, int]
    closed: Mapping[int, int]
    length: int

    @property
    def size(self) -> int:
        """Number of live product states (the memory the frontier pins)."""
        return len(self.closed)

    @property
    def is_dead(self) -> bool:
        """No path is consistent with the observation any more."""
        return not self.closed


@dataclass(frozen=True)
class _Adjacency:
    """Edges split by trace-buffer visibility, indexed by state ID.

    ``visible[sid]`` holds ``(message_id, target_id)`` pairs;
    ``invisible[sid]`` holds bare target IDs.  Built once per
    localizer straight off the interleaved flow's CSR arrays.
    """

    visible: Tuple[Tuple[Tuple[int, int], ...], ...]
    invisible: Tuple[Tuple[int, ...], ...]


class PathLocalizer:
    """Counts interleaved-flow paths consistent with observed traces.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow.
    traced:
        The traced message set (Step 2 selection plus packed groups;
        sub-groups are expanded to their parents for visibility).
    """

    def __init__(
        self, interleaved: InterleavedFlow, traced: Iterable[Message]
    ) -> None:
        self.interleaved = interleaved
        expanded = expand_subgroups(traced, interleaved.messages)
        self._visible: Set[Message] = set(expanded)
        self._total = interleaved.count_paths()
        self._adjacency: Optional[_Adjacency] = None
        self._topo_position: Optional[List[int]] = None
        # message-ID views of the traced set: visibility per message ID,
        # and the instance IDs of each plain (un-indexed) message
        table = interleaved.indexed_messages
        self._visible_mid: Tuple[bool, ...] = tuple(
            m.message in self._visible for m in table
        )
        self._mids_by_plain: Dict[Message, Tuple[int, ...]] = {}
        for mid, m in enumerate(table):
            self._mids_by_plain.setdefault(m.message, ())
            self._mids_by_plain[m.message] += (mid,)

    @property
    def total_paths(self) -> int:
        return self._total

    def is_visible(self, label: object) -> bool:
        """Whether an edge label would be captured by the trace buffer."""
        return underlying_message(label) in self._visible

    def localize(
        self, observed: Sequence[object], mode: str = "prefix"
    ) -> LocalizationResult:
        """Count paths whose visible projection matches *observed*.

        *observed* items may be :class:`IndexedMessage` (exact instance
        match -- tagging keeps indices observable) or plain
        :class:`Message` (any instance matches).

        Parameters
        ----------
        observed:
            The captured trace-buffer content, oldest first.
        mode:
            ``"prefix"`` (default): the observation is a prefix of the
            path's visible projection -- a snapshot taken when a bug
            symptom fired.  ``"exact"``: the projection must equal the
            observation -- a complete run's capture.  ``"window"``: the
            observation is a contiguous run somewhere in the visible
            projection -- a depth-limited ring buffer (requires a fully
            indexed observation).

        Raises
        ------
        SelectionError
            If the observation contains a message that is not traced
            (the buffer could never have captured it), or *mode* is
            unknown, or window mode receives un-indexed items.
        """
        if mode not in MODES:
            raise SelectionError(
                f"unknown localization mode {mode!r}; "
                "choose 'prefix', 'exact', or 'window'"
            )
        for item in observed:
            if not self.is_visible(item):
                raise SelectionError(
                    f"observed message {item!r} is not in the traced set"
                )
        observation: Tuple[object, ...] = tuple(observed)
        if mode == "window":
            count = self.window_count(observation)
        else:
            frontier = self.initial_frontier()
            for item in observation:
                frontier = self.advance_frontier(frontier, item)
            count = (
                self.prefix_count(frontier)
                if mode == "prefix"
                else self.exact_count(frontier)
            )
        return LocalizationResult(consistent_paths=count, total_paths=self._total)

    def warm(self) -> "PathLocalizer":
        """Eagerly build every lazily-constructed table (the visibility
        -split adjacency, the topological index, the stop-path counts,
        and the initial frontier's invisible closure).

        All of these are built on first use anyway; a long-lived host
        that shares one localizer across many sessions (e.g. a debug
        -server shard) calls this once at startup so the cost lands
        there instead of inside the first request's latency.  Returns
        ``self`` so construction and warming chain.
        """
        self._split_adjacency()
        self._topological_position()
        self.interleaved.paths_to_stop_ids()
        self.initial_frontier()
        return self

    # ------------------------------------------------------------------
    # stepwise DP hooks (prefix/exact modes)
    # ------------------------------------------------------------------
    def initial_frontier(self) -> DPFrontier:
        """The frontier before any symbol has been observed."""
        matched = {sid: 1 for sid in self.interleaved.initial_ids}
        return DPFrontier(
            matched=matched,
            closed=self._invisible_closure(matched),
            length=0,
        )

    def advance_frontier(
        self, frontier: DPFrontier, symbol: object
    ) -> DPFrontier:
        """Consume one observed *symbol*: O(frontier x out-degree).

        Raises :class:`~repro.errors.SelectionError` when *symbol* is
        not in the traced set (the buffer could never have captured
        it) -- the same guard the batch API applies up front.
        """
        if not self.is_visible(symbol):
            raise SelectionError(
                f"observed message {symbol!r} is not in the traced set"
            )
        adjacency = self._split_adjacency()
        match_mids = self._matching_message_ids(symbol)
        matched: Dict[int, int] = {}
        steps = 0
        for sid, weight in frontier.closed.items():
            edges = adjacency.visible[sid]
            steps += len(edges)
            for mid, target_id in edges:
                if mid in match_mids:
                    matched[target_id] = matched.get(target_id, 0) + weight
        if perf.enabled():
            perf.add("localize_dp_steps", steps)
        return DPFrontier(
            matched=matched,
            closed=self._invisible_closure(matched),
            length=frontier.length + 1,
        )

    def prefix_count(self, frontier: DPFrontier) -> int:
        """Paths whose visible projection *starts with* the consumed
        observation: every minimally-matched prefix times any
        continuation to a stop state."""
        to_stop = self.interleaved.paths_to_stop_ids()
        return sum(
            weight * to_stop[sid]
            for sid, weight in frontier.matched.items()
        )

    def exact_count(self, frontier: DPFrontier) -> int:
        """Paths whose visible projection *equals* the consumed
        observation: matched prefixes that reach a stop state through
        invisible edges only."""
        stop_ids = self.interleaved.stop_ids
        return sum(
            weight
            for sid, weight in frontier.closed.items()
            if sid in stop_ids
        )

    # ------------------------------------------------------------------
    # window mode (KMP-composed DP)
    # ------------------------------------------------------------------
    def window_count(
        self,
        observation: Tuple[object, ...],
        failure: Optional[Sequence[int]] = None,
    ) -> int:
        """Paths whose visible projection contains *observation* as a
        contiguous run, via the KMP automaton (deterministic, so every
        path is counted exactly once even when the window could match
        at several offsets).

        *failure* may supply a precomputed KMP failure table for the
        observation (e.g. one grown online with :func:`kmp_extend`);
        omitted, it is built here.
        """
        for item in observation:
            if not isinstance(item, IndexedMessage):
                raise SelectionError(
                    "window-mode localization needs a fully indexed "
                    f"observation; got {item!r}"
                )
        if not observation:
            return self._total
        step = _kmp_transition(observation, failure)
        accept = len(observation)
        offsets, msg_ids, targets = self.interleaved.csr_adjacency()
        message_table = self.interleaved.indexed_messages
        visible_mid = self._visible_mid
        to_stop = self.interleaved.paths_to_stop_ids()
        memo: Dict[Tuple[int, int], int] = {}

        def count(sid: int, k: int) -> int:
            if k == accept:
                # absorbing: any continuation is consistent
                return to_stop[sid]
            key = (sid, k)
            cached = memo.get(key)
            if cached is not None:
                return cached
            total = 0
            for e in range(offsets[sid], offsets[sid + 1]):
                mid = msg_ids[e]
                if visible_mid[mid]:
                    total += count(targets[e], step(k, message_table[mid]))
                else:
                    total += count(targets[e], k)
            memo[key] = total
            return total

        result = sum(count(sid, 0) for sid in self.interleaved.initial_ids)
        if perf.enabled():
            perf.add("localize_dp_steps", len(memo))
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _matching_message_ids(self, symbol: object) -> FrozenSet[int]:
        """Message IDs of edge labels the observed *symbol* matches:
        one for an indexed symbol, every instance for a plain one."""
        if isinstance(symbol, IndexedMessage):
            mid = self.interleaved.message_id(symbol)
            return frozenset() if mid is None else frozenset((mid,))
        if isinstance(symbol, Message):
            return frozenset(self._mids_by_plain.get(symbol, ()))
        raise TypeError(f"not a message: {symbol!r}")

    def _split_adjacency(self) -> _Adjacency:
        """Outgoing edges per state ID, split by visibility (lazy,
        built once per localizer -- visibility is fixed)."""
        if self._adjacency is None:
            offsets, msg_ids, targets = self.interleaved.csr_adjacency()
            visible_mid = self._visible_mid
            visible: List[Tuple[Tuple[int, int], ...]] = []
            invisible: List[Tuple[int, ...]] = []
            for sid in range(len(offsets) - 1):
                vis: List[Tuple[int, int]] = []
                invis: List[int] = []
                for e in range(offsets[sid], offsets[sid + 1]):
                    mid = msg_ids[e]
                    if visible_mid[mid]:
                        vis.append((mid, targets[e]))
                    else:
                        invis.append(targets[e])
                visible.append(tuple(vis))
                invisible.append(tuple(invis))
            self._adjacency = _Adjacency(tuple(visible), tuple(invisible))
        return self._adjacency

    def _topological_position(self) -> List[int]:
        """``position[sid]`` = rank of state ID *sid* in topological
        order."""
        if self._topo_position is None:
            order = self.interleaved.topological_ids()
            position = [0] * len(order)
            for i, sid in enumerate(order):
                position[sid] = i
            self._topo_position = position
        return self._topo_position

    def _invisible_closure(
        self, weights: Mapping[int, int]
    ) -> Dict[int, int]:
        """Propagate *weights* forward along invisible edges (each
        invisible path counted once -- relaxation in topological
        order over the reachable sub-DAG only)."""
        if not weights:
            return {}
        position = self._topological_position()
        adjacency = self._split_adjacency()
        closed: Dict[int, int] = dict(weights)
        heap = [(position[sid], sid) for sid in closed]
        heapq.heapify(heap)
        done: Set[int] = set()
        while heap:
            _, sid = heapq.heappop(heap)
            if sid in done:
                continue
            done.add(sid)
            weight = closed[sid]
            for target_id in adjacency.invisible[sid]:
                if target_id not in closed:
                    closed[target_id] = 0
                    heapq.heappush(heap, (position[target_id], target_id))
                closed[target_id] += weight
        return closed


# ----------------------------------------------------------------------
# KMP machinery (window mode)
# ----------------------------------------------------------------------
def kmp_extend(
    pattern: List[object], failure: List[int], symbol: object
) -> None:
    """Append *symbol* to *pattern*, extending *failure* in place.

    This is the online step of the classic failure-function
    construction: O(1) amortized, and the table built by repeated
    extension is identical to :func:`kmp_failure` on the final
    pattern -- which is what lets a streaming window observation grow
    without rebuilding the automaton.
    """
    if not pattern:
        pattern.append(symbol)
        failure.append(0)
        return
    k = failure[-1]
    while k > 0 and symbol != pattern[k]:
        k = failure[k - 1]
    if symbol == pattern[k]:
        k += 1
    pattern.append(symbol)
    failure.append(k)


def kmp_failure(pattern: Sequence[object]) -> List[int]:
    """The KMP failure table of *pattern* (exact equality on items)."""
    grown: List[object] = []
    failure: List[int] = []
    for symbol in pattern:
        kmp_extend(grown, failure, symbol)
    return failure


def _kmp_transition(
    pattern: Tuple[object, ...], failure: Optional[Sequence[int]] = None
):
    """The KMP transition function ``step(state, symbol) -> state`` for
    *pattern* (exact equality on indexed messages)."""
    n = len(pattern)
    if failure is None:
        failure = kmp_failure(pattern)

    def step(state: int, symbol: object) -> int:
        if state == n:
            return n
        while state > 0 and symbol != pattern[state]:
            state = failure[state - 1]
        if symbol == pattern[state]:
            state += 1
        return state

    return step


def localize_trace(
    interleaved: InterleavedFlow,
    traced: Iterable[Message],
    observed: Sequence[object],
    mode: str = "prefix",
) -> LocalizationResult:
    """Functional one-shot wrapper around :class:`PathLocalizer`."""
    return PathLocalizer(interleaved, traced).localize(observed, mode=mode)
