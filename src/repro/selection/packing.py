"""Step 3 of the selection method: packing the trace buffer.

The combination with the highest information gain may leave trace
buffer bits unused.  Packing fills the leftover width with *sub-message
groups* -- narrow slices of messages that are themselves too wide to
trace (e.g. 6-bit ``cputhreadid`` inside the 20-bit ``dmusiidata`` of
OpenSPARC T2) -- greedily maximizing the information gain of the union
until nothing else fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.information import InformationModel
from repro.core.message import Message, MessageCombination
from repro.errors import SelectionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compress.cost import EffectiveWidthBudget

#: Gain policies for a sub-group relative to its parent message.
#: ``"proportional"`` scales the parent's contribution by the fraction
#: of parent bits observed; ``"full"`` credits the whole contribution
#: (observing any slice still timestamps the parent message).
SUBGROUP_POLICIES = ("proportional", "full")


@dataclass(frozen=True)
class PackingResult:
    """Outcome of Step 3.

    Attributes
    ----------
    packed:
        Sub-groups added to the traced set, in packing order.
    gain:
        Information gain of the base combination united with the packed
        groups, under the chosen policy.
    leftover:
        Trace buffer bits still unused after packing.
    """

    packed: Tuple[Message, ...]
    gain: float
    leftover: int


def subgroup_gain(
    model: InformationModel,
    subgroup: Message,
    parents: Dict[str, Message],
    policy: str = "proportional",
) -> float:
    """Information-gain credit of tracing *subgroup* (see module docs)."""
    if policy not in SUBGROUP_POLICIES:
        raise SelectionError(
            f"unknown subgroup gain policy {policy!r}; "
            f"choose one of {SUBGROUP_POLICIES}"
        )
    if subgroup.parent is None:
        return model.message_contribution(subgroup)
    parent = parents.get(subgroup.parent)
    if parent is None:
        return 0.0
    contribution = model.message_contribution(parent)
    if policy == "proportional":
        return contribution * subgroup.width / parent.width
    return contribution


def pack_trace_buffer(
    model: InformationModel,
    base: MessageCombination,
    buffer_width: int,
    subgroups: Iterable[Message],
    policy: str = "proportional",
    budget: Optional["EffectiveWidthBudget"] = None,
) -> PackingResult:
    """Greedily pack *subgroups* into the leftover buffer width.

    Parameters
    ----------
    model:
        Information model of the scenario's interleaved flow.
    base:
        The combination selected in Step 2; its width must already fit.
    buffer_width:
        Total trace buffer width in bits.
    subgroups:
        Candidate sub-message groups (messages with a ``parent``).
        Groups whose parent is already traced, or that do not fit, are
        skipped.
    policy:
        Gain-credit policy, see :data:`SUBGROUP_POLICIES`.
    budget:
        Optional compression-aware bit budget.  When given, leftover
        space and per-group cost are measured in expected encoded bits
        against ``budget.capacity_bits`` instead of physical entry
        width (a packed slice then costs what its encoded occurrences
        cost, not its raw width).

    Returns
    -------
    PackingResult
        Packed groups, the gain of the union, and the remaining bits
        (budget bits when a budget is given).
    """
    if budget is None:
        cost_of = lambda m: m.width  # noqa: E731 - tiny local adapter
        capacity = buffer_width
    else:
        cost_of = budget.message_cost_bits
        capacity = budget.capacity_bits
    base_cost = sum(cost_of(m) for m in base)
    if base_cost > capacity:
        raise SelectionError(
            f"base combination ({base_cost} bits) exceeds the "
            f"{capacity}-bit trace buffer budget"
        )
    parents = {m.name: m for m in model.interleaved.messages}
    selected_names: Set[str] = {m.name for m in base}
    leftover = capacity - base_cost
    packed: List[Message] = []
    gain = model.gain(base)

    candidates = sorted(set(subgroups))
    while True:
        best: Optional[Message] = None
        best_gain = 0.0
        for group in candidates:
            if cost_of(group) > leftover:
                continue
            if group.name in selected_names:
                continue
            if group.parent is not None and group.parent in selected_names:
                continue  # parent already fully traced: the slice is free
            credit = subgroup_gain(model, group, parents, policy)
            key = (credit, group.width, group.name)
            if best is None or key > (best_gain, best.width, best.name):
                best, best_gain = group, credit
        if best is None:
            break
        packed.append(best)
        selected_names.add(best.name)
        leftover -= cost_of(best)
        gain += best_gain
        candidates.remove(best)

    return PackingResult(packed=tuple(packed), gain=gain, leftover=leftover)


def expand_subgroups(
    messages: Iterable[Message], flow_messages: Iterable[Message]
) -> MessageCombination:
    """Map every sub-group of *messages* to its parent flow message.

    Visibility-wise, tracing a slice of a message makes the enclosing
    message's transitions observable; this expansion is what coverage
    and path localization operate on.
    """
    parents = {m.name: m for m in flow_messages}
    expanded: List[Message] = []
    for m in messages:
        if m.parent is not None and m.parent in parents:
            expanded.append(parents[m.parent])
        else:
            expanded.append(m)
    return MessageCombination(expanded)
