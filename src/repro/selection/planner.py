"""Trace-buffer width planning.

Message selection answers "what fits a given buffer?"; silicon
architects face the inverse question during floorplanning: *how wide
must the trace buffer be* to hit a coverage target for the usage
scenarios that matter?  The planner sweeps candidate widths, reports
the coverage/gain knee, and finds the minimal width meeting a target
-- the numbers a debug-architecture review actually asks for.

Monotonicity caveat: Step-2 gain (without packing) is monotone in the
width -- a larger buffer admits every smaller solution.  *Coverage* and
*packed* gain are not guaranteed monotone: the gain-optimal set at a
larger width can tie-break onto lower-coverage messages, and a fuller
Step-2 set leaves less leftover for sub-group packing.  The planner
reports what each width actually achieves; ``minimal_width_for_coverage``
returns the smallest swept width meeting the target even if a larger
width dips below it again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.core.interleave import InterleavedFlow
from repro.core.message import Message
from repro.errors import SelectionError
from repro.runtime.orchestrator import orchestrate
from repro.selection.selector import MessageSelector, SelectionResult


@dataclass(frozen=True)
class PlanPoint:
    """Selection outcome at one candidate buffer width."""

    width: int
    coverage: float
    gain: float
    utilization: float
    traced: Tuple[str, ...]


@dataclass(frozen=True)
class BufferPlan:
    """A full width sweep plus derived recommendations."""

    points: Tuple[PlanPoint, ...]

    def minimal_width_for_coverage(self, target: float) -> Optional[int]:
        """Smallest swept width whose coverage reaches *target*
        (``None`` if no swept width does)."""
        for point in self.points:
            if point.coverage >= target:
                return point.width
        return None

    def knee(self) -> PlanPoint:
        """The sweep's diminishing-returns knee: the point with the
        largest coverage-per-bit drop *after* it.

        A simple discrete knee criterion: maximize
        ``coverage[i] - width[i] * slope`` where ``slope`` is the
        overall coverage-per-bit of the sweep -- the point furthest
        above the straight line from first to last.
        """
        first, last = self.points[0], self.points[-1]
        span = last.width - first.width
        if span == 0:
            return first
        slope = (last.coverage - first.coverage) / span
        best = max(
            self.points,
            key=lambda p: p.coverage - (p.width - first.width) * slope,
        )
        return best


def _plan_task(args) -> PlanPoint:
    """Selection at one candidate width (independent work unit)."""
    interleaved, width, subgroup_list, packing = args
    try:
        result: SelectionResult = MessageSelector(
            interleaved, width, subgroups=subgroup_list
        ).select(method="knapsack", packing=packing)
    except SelectionError:
        # nothing fits this width: zero point
        return PlanPoint(
            width=width, coverage=0.0, gain=0.0,
            utilization=0.0, traced=(),
        )
    return PlanPoint(
        width=width,
        coverage=result.coverage,
        gain=result.gain,
        utilization=result.utilization,
        traced=result.traced.names(),
    )


def plan_buffer(
    interleaved: InterleavedFlow,
    widths: Sequence[int] = (8, 12, 16, 20, 24, 28, 32, 40, 48, 64),
    subgroups: Iterable[Message] = (),
    packing: bool = True,
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> BufferPlan:
    """Sweep candidate buffer *widths* over one scenario.

    Each width is an independent selection, so ``jobs>1`` sweeps them
    across a process pool; the plan's point order follows *widths*
    either way.

    Raises
    ------
    SelectionError
        If *widths* is empty or not strictly increasing.
    """
    widths = tuple(widths)
    if not widths:
        raise SelectionError("width sweep needs at least one width")
    if any(b <= a for a, b in zip(widths, widths[1:])):
        raise SelectionError(
            f"widths must be strictly increasing, got {widths}"
        )
    subgroup_list = tuple(subgroups)
    points, _ = orchestrate(
        _plan_task,
        [(interleaved, width, subgroup_list, packing) for width in widths],
        jobs=jobs,
        timeout=timeout,
        name="plan",
    )
    return BufferPlan(points=tuple(points))


def format_plan(plan: BufferPlan) -> str:
    """Render a plan as an aligned text table with the knee marked."""
    knee = plan.knee()
    lines = ["width  coverage  gain     util    traced"]
    for point in plan.points:
        marker = "  <- knee" if point.width == knee.width else ""
        lines.append(
            f"{point.width:>5}  {point.coverage:>7.2%}  "
            f"{point.gain:>6.3f}  {point.utilization:>6.1%}  "
            f"{len(point.traced)} msgs{marker}"
        )
    return "\n".join(lines)
