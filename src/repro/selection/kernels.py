"""Vectorized localization kernels and the cross-shard table registry.

The per-event inner loop of the serving stack is the localization DP:
every FEED chunk the debug server accepts walks
:meth:`~repro.selection.localization.PathLocalizer.advance_frontier`
one symbol at a time through Python dicts -- per-edge hashing, per-edge
dict churn, and a heap-based invisible-closure walk per symbol.  This
module compiles the interleaved flow's CSR adjacency into **transition
operators** so that a frontier becomes a sorted ``(state IDs, weights)``
vector pair over the *live* states and consuming one observed symbol is
a fixed, small number of gather/scatter-add kernel calls:

* **per-symbol operators** -- for every visible message ID (and for
  every plain message, the union over its instances) the ``(source,
  target)`` state-ID pairs of the edges it labels, sorted by source:
  the matched step locates each live state's edge run by binary
  search, expands the runs with one repeat/cumsum gather, and reduces
  duplicate targets with one scatter-add -- O(live states + touched
  edges), never O(product states);
* **the invisible-closure matrix** -- the transitive path counts
  ``paths(i -> j)`` along non-traced edges, precomputed once per
  ``(scenario, visible set)`` as source-sorted triplets, so closure
  expansion is the same row-gather/scatter-add instead of a heap
  relaxation per symbol;
* **chunk-batched stepping** -- :meth:`PathLocalizer.advance_many
  <repro.selection.localization.PathLocalizer.advance_many>` feeds a
  whole FEED chunk through the kernels in one call, amortizing the
  sparse-map/vector conversions over the chunk.

When :mod:`numpy` is available the kernels run on ``int64`` arrays;
otherwise a pure-Python fallback runs the same compiled tables with
dict frontiers and precompiled closure ranges (exact big-int
arithmetic, no third-party imports).  Equality with the reference
engine is **bit-identical** by construction: all weights are integers,
integer addition is order-independent, and the numpy path is guarded
by an exact compile-time overflow bound -- any step whose weights
could overflow ``int64`` is transparently promoted to the pure-Python
kernels (counted as ``localize_kernel_promotions``).

Compiled tables are immutable after construction and shared across
sessions and shard lanes through a content-addressed
:class:`TableRegistry` keyed by the ``(scenario, visible-set)``
fingerprint -- previously every
:class:`~repro.stream.session.SessionManager` (one per server shard)
rebuilt identical DP tables.  The registry exports hit/miss/byte
counters for the service metrics plane.

Engine selection is controlled by the ``REPRO_LOCALIZE_ENGINE``
environment variable (``dense``, the default, or ``reference`` -- the
escape hatch back to the historical dict engine) or explicitly per
:class:`~repro.selection.localization.PathLocalizer`.
"""

from __future__ import annotations

import hashlib
import os
import threading
from array import array
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import perf
from repro.core.interleave import InterleavedFlow
from repro.core.message import Message
from repro.errors import SelectionError

try:  # numpy is optional: the pure-Python kernels are the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _force_python
    _np = None

#: Engine names :func:`resolve_engine_name` accepts.
ENGINES = ("dense", "reference")

#: Environment variable selecting the default localization engine.
ENGINE_ENV = "REPRO_LOCALIZE_ENGINE"

_INT64_MAX = 2**63 - 1

#: Test hook: set to ``True`` to force the pure-Python kernels even
#: when numpy is importable (the CI fallback leg simply has no numpy).
#: Flip it *before* compiling tables -- a table is pinned to the
#: backend it was compiled under.
_force_python = False


def have_numpy() -> bool:
    """Whether the numpy kernel backend is available (and not forced
    off by the test hook)."""
    return _np is not None and not _force_python


def resolve_engine_name(explicit: Optional[str] = None) -> str:
    """The engine a localizer should use: *explicit* when given, else
    the ``REPRO_LOCALIZE_ENGINE`` environment variable, else ``dense``
    when numpy is available and ``reference`` otherwise.

    Without numpy the dense engine falls back to pure-Python kernels
    that are bit-identical but slower than the reference DP on typical
    frontiers, so defaulting to it would be a silent regression; it
    stays reachable via ``engine="dense"`` or the environment variable.

    Raises :class:`~repro.errors.SelectionError` on unknown names, so a
    typo in the environment fails loudly at construction rather than
    silently picking a default.
    """
    name = explicit if explicit is not None else os.environ.get(ENGINE_ENV)
    if name is None or name == "":
        return "dense" if have_numpy() else "reference"
    if name not in ENGINES:
        raise SelectionError(
            f"unknown localization engine {name!r}; choose "
            f"{' or '.join(ENGINES)} (via {ENGINE_ENV} or engine=)"
        )
    return name


# ----------------------------------------------------------------------
# content addressing
# ----------------------------------------------------------------------
def table_fingerprint(
    interleaved: InterleavedFlow, visible_mid: Sequence[bool]
) -> str:
    """Content hash of ``(scenario, visible set)``.

    Hashes the interned CSR arrays, the message table's identity (name,
    index, width, parent -- everything that affects matching), the
    initial/stop sets, and the per-message visibility vector.  Two
    localizers over structurally identical products with the same
    traced set produce the same fingerprint regardless of process,
    hash seed, or object identity -- which is what lets every server
    shard share one compiled table set.
    """
    offsets, msg_ids, targets = interleaved.csr_adjacency()
    digest = hashlib.sha256()
    digest.update(
        repr(
            tuple(
                (m.index, m.message.name, m.message.width, m.message.parent)
                for m in interleaved.indexed_messages
            )
        ).encode("utf-8")
    )
    for arr in (
        offsets,
        msg_ids,
        targets,
        tuple(interleaved.initial_ids),
        tuple(sorted(interleaved.stop_ids)),
    ):
        digest.update(array("q", arr).tobytes())
        digest.update(b"|")
    digest.update(bytes(bytearray(1 if v else 0 for v in visible_mid)))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# compiled operators
# ----------------------------------------------------------------------
def _sorted_runs(
    pairs: List[Tuple[int, int]],
) -> Tuple[List[int], List[int], Dict[int, Tuple[int, int]]]:
    """Sort ``(source, target)`` pairs and index each source's
    contiguous run: ``(sources, targets, {source: (lo, hi)})``."""
    pairs = sorted(pairs)
    sources = [s for s, _ in pairs]
    targets = [t for _, t in pairs]
    ranges: Dict[int, Tuple[int, int]] = {}
    lo = 0
    for i in range(1, len(pairs) + 1):
        if i == len(pairs) or sources[i] != sources[lo]:
            ranges[sources[lo]] = (lo, i)
            lo = i
    return sources, targets, ranges


class _Operator:
    """One observable symbol's visible edges, sorted by source state.

    ``growth`` is the largest number of edges sharing a target (the
    exact per-step weight amplification the overflow guard uses).  On
    the numpy backend ``src``/``tgt`` are read-only ``int64`` arrays;
    the pure-Python kernels use ``ranges`` (source -> run bounds) and
    ``tgt_list`` directly.
    """

    __slots__ = ("src", "tgt", "tgt_list", "ranges", "growth", "edges")

    def __init__(self, pairs: List[Tuple[int, int]]) -> None:
        sources, self.tgt_list, self.ranges = _sorted_runs(pairs)
        self.edges = len(sources)
        multiplicity: Dict[int, int] = {}
        for t in self.tgt_list:
            multiplicity[t] = multiplicity.get(t, 0) + 1
        self.growth = max(multiplicity.values(), default=0)
        if have_numpy():
            self.src = _np.asarray(sources, dtype=_np.int64)
            self.tgt = _np.asarray(self.tgt_list, dtype=_np.int64)
            self.src.flags.writeable = False
            self.tgt.flags.writeable = False
        else:
            self.src = None
            self.tgt = None

    def __len__(self) -> int:
        return self.edges

    @property
    def nbytes(self) -> int:
        return 16 * self.edges


class _StepResult:
    """One kernel step's output frontier.

    ``matched``/``closed`` are sparse vectors in the backend's
    representation: ``(ids, weights)`` sorted int64 array pairs on
    numpy, plain dicts on the pure-Python kernels.  ``size`` is the
    number of live states in ``closed`` (every stored weight is
    positive, so it equals the reference engine's ``len(closed)``).
    """

    __slots__ = ("matched", "closed", "size")

    def __init__(self, matched, closed, size: int) -> None:
        self.matched = matched
        self.closed = closed
        self.size = size


def _expand_runs(lo, counts, total: int):
    """Indices selecting, for every row ``i``, the half-open run
    ``[lo[i], lo[i] + counts[i])`` -- the vectorized equivalent of a
    per-row inner loop (repeat/cumsum index expansion)."""
    cum = _np.cumsum(counts)
    return (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(cum - counts, counts)
        + _np.repeat(lo, counts)
    )


def _reduce_by_id(ids, weights):
    """Sum *weights* grouped by *ids*: sorted unique ids plus int64
    sums (exact -- ``np.add.at`` accumulates in int64, never float)."""
    uniq, inverse = _np.unique(ids, return_inverse=True)
    sums = _np.zeros(uniq.size, dtype=_np.int64)
    _np.add.at(sums, inverse, weights)
    return uniq, sums


#: Gather sizes from which the bincount-based reduction beats
#: ``np.unique`` (whose argsort dominates wide closure expansions).
_BINCOUNT_MIN = 4096

#: Above this many addends the split-float reduction can no longer
#: guarantee exact float64 sums (2^21 addends x 2^32 <= 2^53).
_BINCOUNT_MAX = 1 << 21

_SPLIT_MASK = (1 << 31) - 1

#: Bound on the per-table step memo (content-keyed ``(frontier,
#: symbol) -> result`` cache shared across sessions and shards).
_MEMO_SLOTS = 1024


class CompiledTables:
    """The compiled localization tables of one ``(scenario, visible
    set)``.

    Immutable after construction (numpy arrays are marked read-only),
    so one instance is safely shared across every session and shard
    lane localizing the same scenario.  Built by
    :class:`TableRegistry`; the heavy part is the invisible-closure
    transitive path-count matrix, computed once here instead of being
    re-walked per observed symbol by the reference engine.
    """

    def __init__(
        self, interleaved: InterleavedFlow, visible_mid: Sequence[bool]
    ) -> None:
        offsets, msg_ids, targets = interleaved.csr_adjacency()
        n = len(offsets) - 1
        self.num_states = n

        # visible edges grouped by message ID
        by_mid: Dict[int, List[Tuple[int, int]]] = {}
        invisible: List[List[int]] = [[] for _ in range(n)]
        for sid in range(n):
            for e in range(offsets[sid], offsets[sid + 1]):
                mid = msg_ids[e]
                if visible_mid[mid]:
                    by_mid.setdefault(mid, []).append((sid, targets[e]))
                else:
                    invisible[sid].append(targets[e])
        self.op_by_mid: Dict[int, _Operator] = {
            mid: _Operator(pairs) for mid, pairs in by_mid.items()
        }
        # merged operators for plain (un-indexed) observations: the
        # union of every instance's edges
        table = interleaved.indexed_messages
        plain_pairs: Dict[Message, List[Tuple[int, int]]] = {}
        for mid, pairs in by_mid.items():
            plain_pairs.setdefault(table[mid].message, []).extend(pairs)
        self.op_by_plain: Dict[Message, _Operator] = {
            message: _Operator(pairs)
            for message, pairs in plain_pairs.items()
        }

        # invisible-closure path counts: source-sorted triplets of
        # paths(i -> j) over non-traced edges (j != i; the identity
        # term is implicit in the ``closed = matched + ...``
        # application), built by a reverse-topological DP
        order = interleaved.topological_ids()
        rows: List[Optional[Dict[int, int]]] = [None] * n
        csrc: List[int] = []
        ctgt: List[int] = []
        cweight: List[int] = []
        cranges: Dict[int, Tuple[int, int]] = {}
        for sid in reversed(order):
            row: Dict[int, int] = {}
            for t in invisible[sid]:
                row[t] = row.get(t, 0) + 1
                inner = rows[t]
                if inner:
                    for j, w in inner.items():
                        row[j] = row.get(j, 0) + w
            rows[sid] = row
        col_sums: Dict[int, int] = {}
        for sid in range(n):
            row = rows[sid]
            if not row:
                continue
            lo = len(csrc)
            for j in sorted(row):
                csrc.append(sid)
                ctgt.append(j)
                cweight.append(row[j])
                col_sums[j] = col_sums.get(j, 0) + row[j]
            cranges[sid] = (lo, len(csrc))
        self.closure_entries = len(ctgt)
        self._ctgt_list = ctgt
        self._cweight_list = cweight
        self._cranges = cranges

        # exact int64-overflow guard: one advance multiplies the peak
        # weight by at most step_growth (matched scatter-add) and then
        # by closure_growth (worst closure column sum plus the
        # identity term)
        step_growth = max(
            (op.growth for op in self.op_by_mid.values()), default=0
        )
        step_growth = max(
            step_growth,
            max((op.growth for op in self.op_by_plain.values()), default=0),
        )
        closure_growth = 1 + max(col_sums.values(), default=0)
        growth = max(1, step_growth) * closure_growth
        self.int64_limit = (
            _INT64_MAX // growth if growth <= _INT64_MAX else 0
        )

        self._numpy = have_numpy()
        if self._numpy:
            self._csrc = _np.asarray(csrc, dtype=_np.int64)
            self._ctgt = _np.asarray(ctgt, dtype=_np.int64)
            self._cweight = _np.asarray(cweight, dtype=_np.int64)
            for arr in (self._csrc, self._ctgt, self._cweight):
                arr.flags.writeable = False
            if int(self._cweight.max(initial=0)) != max(cweight, default=0):
                # closure weights themselves exceed int64 (pathological
                # products); numpy can never be safe here
                self.int64_limit = 0  # pragma: no cover - astronomical

        self.nbytes = (
            sum(op.nbytes for op in self.op_by_mid.values())
            + sum(op.nbytes for op in self.op_by_plain.values())
            + 24 * len(ctgt)
        )

        # content-keyed step memo: sessions localizing the same
        # scenario share not just the tables but the hot DP steps --
        # concurrent streams overlap heavily on the wide early
        # frontiers, which are exactly the expensive ones.  Keys are
        # the raw frontier bytes plus the operator's identity, so a
        # hit is exact by construction; results are frozen read-only.
        self._memo_lock = threading.Lock()
        self._memo: "OrderedDict[Tuple[int, bytes, bytes], _StepResult]" = (
            OrderedDict()
        )
        perf.add("localize_table_compiles")
        perf.add("localize_table_bytes", self.nbytes)

    # ------------------------------------------------------------------
    # vector plumbing
    # ------------------------------------------------------------------
    def scatter(self, weights: Mapping[int, int]):
        """A kernel frontier vector from a sparse ``{state ID:
        weight}`` mapping -- a sorted int64 array pair when the numpy
        backend may run, a plain dict otherwise."""
        if self._numpy and self.int64_limit:
            if all(w <= self.int64_limit for w in weights.values()):
                items = sorted(weights.items())
                ids = _np.asarray([i for i, _ in items], dtype=_np.int64)
                vals = _np.asarray([w for _, w in items], dtype=_np.int64)
                return (ids, vals)
        return dict(weights)

    @staticmethod
    def harvest(vec) -> Dict[int, int]:
        """The sparse ``{state ID: weight}`` dict of a kernel vector
        (ascending state IDs on the numpy backend -- deterministic and
        hash-seed free)."""
        if isinstance(vec, dict):
            return dict(vec)
        ids, vals = vec
        return dict(zip((int(i) for i in ids), (int(w) for w in vals)))

    # ------------------------------------------------------------------
    # the kernels
    # ------------------------------------------------------------------
    def advance(self, closed_vec, op: Optional[_Operator]) -> _StepResult:
        """One localization step: gather the live states' edge runs
        through *op*, reduce duplicate targets, then expand the
        invisible closure.

        ``closed_vec`` is the previous frontier's closure vector; a
        ``None``/empty operator (the symbol labels no product edge)
        yields the dead frontier.  The numpy path runs while the exact
        overflow guard allows it; otherwise the step is promoted to
        the pure-Python kernels (same tables, big-int weights).
        """
        if op is None or len(op) == 0:
            if isinstance(closed_vec, dict):
                return _StepResult({}, {}, 0)
            empty = _np.empty(0, dtype=_np.int64)
            return _StepResult((empty, empty), (empty, empty), 0)
        if not isinstance(closed_vec, dict):
            ids, vals = closed_vec
            if vals.size == 0:
                return _StepResult(closed_vec, closed_vec, 0)
            if int(vals.max()) <= self.int64_limit:
                key = (id(op), ids.tobytes(), vals.tobytes())
                with self._memo_lock:
                    hit = self._memo.get(key)
                    if hit is not None:
                        self._memo.move_to_end(key)
                if hit is not None:
                    perf.add("localize_step_memo_hits")
                    return hit
                perf.add("localize_step_memo_misses")
                result = self._advance_numpy(ids, vals, op)
                for pair in (result.matched, result.closed):
                    pair[0].flags.writeable = False
                    pair[1].flags.writeable = False
                with self._memo_lock:
                    self._memo[key] = result
                    while len(self._memo) > _MEMO_SLOTS:
                        self._memo.popitem(last=False)
                return result
            perf.add("localize_kernel_promotions")
            closed_vec = dict(
                zip((int(i) for i in ids), (int(w) for w in vals))
            )
        return self._advance_python(closed_vec, op)

    def _reduce(self, ids, weights):
        """Sum *weights* grouped by *ids*, exactly, picking the faster
        strategy for the gather size.

        Small gathers use :func:`_reduce_by_id`; wide ones (the
        closure expansion of a wide frontier) use two ``bincount``
        passes over 31-bit weight halves carried as float64 -- exact
        because each half's partial sums stay below 2^53 for up to
        2^21 addends, and the recombined ``(hi << 31) + lo`` cannot
        overflow when the true sum fits int64 (which the compile-time
        overflow guard already ensures).
        """
        if _BINCOUNT_MIN <= ids.size <= _BINCOUNT_MAX:
            lo_sum = _np.bincount(
                ids,
                weights=(weights & _SPLIT_MASK).astype(_np.float64),
                minlength=self.num_states,
            )
            hi_sum = _np.bincount(
                ids,
                weights=(weights >> 31).astype(_np.float64),
                minlength=self.num_states,
            )
            nz = _np.nonzero(lo_sum + hi_sum)[0]
            sums = (hi_sum[nz].astype(_np.int64) << 31) + lo_sum[nz].astype(
                _np.int64
            )
            return nz, sums
        return _reduce_by_id(ids, weights)

    def _advance_numpy(self, ids, vals, op: _Operator) -> _StepResult:
        lo = _np.searchsorted(op.src, ids, side="left")
        hi = _np.searchsorted(op.src, ids, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = _np.empty(0, dtype=_np.int64)
            if perf.enabled():
                perf.add("localize_kernel_edges", int(ids.size))
            return _StepResult((empty, empty), (empty, empty), 0)
        sel = _expand_runs(lo, counts, total)
        m_ids, m_vals = self._reduce(op.tgt[sel], _np.repeat(vals, counts))
        # closure expansion over the matched states' precomputed rows
        clo = _np.searchsorted(self._csrc, m_ids, side="left")
        chi = _np.searchsorted(self._csrc, m_ids, side="right")
        ccounts = chi - clo
        ctotal = int(ccounts.sum())
        if ctotal:
            csel = _expand_runs(clo, ccounts, ctotal)
            c_ids, c_vals = self._reduce(
                _np.concatenate((m_ids, self._ctgt[csel])),
                _np.concatenate(
                    (m_vals, self._cweight[csel] * _np.repeat(m_vals, ccounts))
                ),
            )
        else:
            c_ids, c_vals = m_ids, m_vals
        if perf.enabled():
            perf.add("localize_kernel_edges", total + ctotal)
        return _StepResult((m_ids, m_vals), (c_ids, c_vals), int(c_ids.size))

    def _advance_python(
        self, closed_vec: Dict[int, int], op: _Operator
    ) -> _StepResult:
        matched: Dict[int, int] = {}
        edges = 0
        tgt = op.tgt_list
        for s, w in closed_vec.items():
            run = op.ranges.get(s)
            if run is not None:
                edges += run[1] - run[0]
                for e in range(run[0], run[1]):
                    t = tgt[e]
                    matched[t] = matched.get(t, 0) + w
        closed = dict(matched)
        ctgt = self._ctgt_list
        cweight = self._cweight_list
        for s, w in matched.items():
            run = self._cranges.get(s)
            if run is not None:
                edges += run[1] - run[0]
                for e in range(run[0], run[1]):
                    t = ctgt[e]
                    closed[t] = closed.get(t, 0) + w * cweight[e]
        if perf.enabled():
            perf.add("localize_kernel_edges", edges)
        return _StepResult(matched, closed, len(closed))


# ----------------------------------------------------------------------
# the cross-shard registry
# ----------------------------------------------------------------------
class TableRegistry:
    """Content-addressed cache of :class:`CompiledTables`.

    Keyed by :func:`table_fingerprint`, bounded LRU.  Every
    :class:`~repro.selection.localization.PathLocalizer` running the
    dense engine resolves its tables here, so the debug server's
    per-shard :class:`~repro.stream.session.SessionManager` lanes (and
    any number of concurrent sessions) share one read-only table set
    per scenario instead of each rebuilding it.  ``stats()`` feeds the
    service metrics plane (``STATS`` frame, ``/metrics``, ``repro
    profile --json``).
    """

    def __init__(self, max_tables: int = 32) -> None:
        if max_tables < 1:
            raise SelectionError(
                f"max_tables must be >= 1, got {max_tables}"
            )
        self._lock = threading.Lock()
        self._tables: "OrderedDict[str, CompiledTables]" = OrderedDict()
        self._max_tables = max_tables
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self, interleaved: InterleavedFlow, visible_mid: Sequence[bool]
    ) -> CompiledTables:
        """The compiled tables for ``(interleaved, visible set)`` --
        cached by content hash, built (and published) on first use."""
        key = table_fingerprint(interleaved, visible_mid)
        with self._lock:
            cached = self._tables.get(key)
            if cached is not None:
                self._tables.move_to_end(key)
                self._hits += 1
                perf.add("localize_table_hits")
                return cached
            self._misses += 1
        perf.add("localize_table_misses")
        with perf.timed("localize_compile"):
            built = CompiledTables(interleaved, visible_mid)
        with self._lock:
            # a racing builder may have published first; reuse its
            # copy so every caller shares one object
            cached = self._tables.get(key)
            if cached is not None:
                return cached
            self._tables[key] = built
            while len(self._tables) > self._max_tables:
                self._tables.popitem(last=False)
                self._evictions += 1
        return built

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()

    def stats(self) -> Dict[str, object]:
        """Hit/miss/byte counters for the observability plane."""
        with self._lock:
            tables = list(self._tables.values())
            hits, misses, evictions = self._hits, self._misses, self._evictions
        return {
            "tables": len(tables),
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "bytes": sum(t.nbytes for t in tables),
            "closure_entries": sum(t.closure_entries for t in tables),
            "step_memo_entries": sum(len(t._memo) for t in tables),
            "backend": "numpy" if have_numpy() else "python",
        }


#: Process-wide registry every dense localizer shares by default.
_DEFAULT_REGISTRY = TableRegistry()


def default_registry() -> TableRegistry:
    """The process-wide shared :class:`TableRegistry`."""
    return _DEFAULT_REGISTRY
