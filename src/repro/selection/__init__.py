"""The three-step trace message selection method (Section 3).

* :mod:`repro.selection.combinations` -- Step 1: enumerate message
  combinations that fit the trace buffer width.
* :mod:`repro.selection.selector` -- Step 2: pick the combination with
  the highest mutual information gain (exhaustive search and the exact
  knapsack equivalent); end-to-end :class:`MessageSelector`.
* :mod:`repro.selection.packing` -- Step 3: pack leftover buffer bits
  with sub-message groups.
* :mod:`repro.selection.localization` -- path localization of observed
  traces (Section 5.2).
* :mod:`repro.selection.kernels` -- the dense localization engine:
  compiled transition operators, the invisible-closure matrix, and the
  content-addressed table registry shared across sessions and shards.
"""

from repro.selection.combinations import feasible_combinations
from repro.selection.selector import MessageSelector, SelectionResult, select_messages
from repro.selection.packing import pack_trace_buffer, PackingResult
from repro.selection.localization import (
    AdvanceOutcome,
    LocalizationResult,
    PathLocalizer,
)
from repro.selection.kernels import (
    CompiledTables,
    TableRegistry,
    default_registry,
    resolve_engine_name,
)

__all__ = [
    "feasible_combinations",
    "MessageSelector",
    "SelectionResult",
    "select_messages",
    "pack_trace_buffer",
    "PackingResult",
    "PathLocalizer",
    "LocalizationResult",
    "AdvanceOutcome",
    "CompiledTables",
    "TableRegistry",
    "default_registry",
    "resolve_engine_name",
]
