"""Step 2 of the selection method, and the end-to-end selector.

Given the interleaved flow of a usage scenario and a trace buffer width,
pick the width-feasible message combination with the highest mutual
information gain (Section 3.2), then optionally pack leftover bits with
sub-message groups (Section 3.3).

Two equivalent Step-2 engines are provided:

* ``method="exhaustive"`` -- the paper's formulation: enumerate every
  feasible combination (Step 1) and take the argmax of the gain.
* ``method="knapsack"`` -- exact 0/1 knapsack over per-message gain
  contributions.  Because the paper's probability model makes the gain
  additive across indexed messages (see
  :mod:`repro.core.information`), the knapsack optimum equals the
  exhaustive optimum while scaling to message pools far beyond
  exhaustive reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro import perf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compress.cost import EffectiveWidthBudget
from repro.core.coverage import flow_specification_coverage
from repro.core.information import InformationModel
from repro.core.interleave import InterleavedFlow
from repro.core.message import Message, MessageCombination
from repro.errors import SelectionError
from repro.selection.combinations import feasible_combinations
from repro.selection.packing import (
    PackingResult,
    expand_subgroups,
    pack_trace_buffer,
)

#: Step-2 engines accepted by :meth:`MessageSelector.select`.
METHODS = ("exhaustive", "knapsack")


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the three-step selection method.

    Attributes
    ----------
    combination:
        Messages chosen in Step 2.
    packed:
        Sub-message groups added by Step 3 (empty without packing).
    gain:
        Mutual information gain of the traced set (packing credit
        included, per the packing policy).
    coverage:
        Flow specification coverage (Definition 7) of the traced set
        over the scenario's interleaved flow.
    buffer_width:
        Trace buffer width the selection was made for.
    method:
        Step-2 engine used (``"exhaustive"`` or ``"knapsack"``).
    budget_mode:
        Admissibility rule used in Steps 1 and 3: ``"width"`` (the
        paper's worst-case ``sum(widths) <= W``) or ``"effective"``
        (compression-aware bit budget,
        :class:`repro.compress.cost.EffectiveWidthBudget`).
    capacity_bits:
        Total bit budget of the effective mode (``0`` in width mode).
    cost_bits:
        Estimated encoded bits of the traced set against that budget
        (``0`` in width mode).
    guard_band:
        Worst-case guard band of the effective budget.
    """

    combination: MessageCombination
    packed: Tuple[Message, ...]
    gain: float
    coverage: float
    buffer_width: int
    method: str
    budget_mode: str = "width"
    capacity_bits: int = 0
    cost_bits: int = 0
    guard_band: float = 0.0

    @property
    def traced(self) -> MessageCombination:
        """Everything that ends up in the trace buffer."""
        return MessageCombination(tuple(self.combination) + self.packed)

    @property
    def total_width(self) -> int:
        """Bits of trace buffer occupied."""
        return self.traced.total_width

    @property
    def utilization(self) -> float:
        """Trace buffer utilization in ``[0, 1]``.

        Width mode: occupied entry bits over entry width.  Effective
        mode: estimated encoded bits over the physical bit budget.
        """
        if self.budget_mode == "effective" and self.capacity_bits:
            return self.cost_bits / self.capacity_bits
        return self.total_width / self.buffer_width

    def describe(self) -> str:
        """One-line human-readable summary."""
        packed = (
            " + packed {" + ", ".join(m.name for m in self.packed) + "}"
            if self.packed
            else ""
        )
        if self.budget_mode == "effective" and self.capacity_bits:
            bits = (
                f"~{self.cost_bits}/{self.capacity_bits} encoded bits, "
                f"guard band {self.guard_band:.0%}"
            )
        else:
            bits = f"{self.total_width}/{self.buffer_width} bits"
        return (
            f"{{{', '.join(self.combination.names())}}}{packed}: "
            f"gain={self.gain:.4f}, coverage={self.coverage:.2%}, "
            f"utilization={self.utilization:.2%} "
            f"({bits})"
        )


class MessageSelector:
    """End-to-end message selection for one usage scenario.

    Parameters
    ----------
    interleaved:
        The interleaved flow ``U`` of the usage scenario.
    buffer_width:
        Available trace buffer width in bits (the paper uses 32).
    subgroups:
        Candidate sub-message groups available for Step-3 packing.
    subgroup_policy:
        Gain-credit policy for packed groups
        (:data:`repro.selection.packing.SUBGROUP_POLICIES`).
    budget:
        Optional compression-aware bit budget
        (:class:`repro.compress.cost.EffectiveWidthBudget`).  When
        given, Steps 1-3 admit combinations by expected *encoded* bits
        against the buffer's physical ``width x depth`` budget instead
        of the worst-case per-entry width rule; messages wider than
        one buffer entry become candidates (the codec spreads them
        over the bit budget).
    """

    def __init__(
        self,
        interleaved: InterleavedFlow,
        buffer_width: int,
        subgroups: Iterable[Message] = (),
        subgroup_policy: str = "proportional",
        budget: Optional["EffectiveWidthBudget"] = None,
    ) -> None:
        if buffer_width <= 0:
            raise SelectionError(
                f"trace buffer width must be positive, got {buffer_width}"
            )
        self.interleaved = interleaved
        self.buffer_width = buffer_width
        self.subgroups: Tuple[Message, ...] = tuple(sorted(set(subgroups)))
        self.subgroup_policy = subgroup_policy
        self.budget = budget
        with perf.timed("information_model"):
            self.model = InformationModel(interleaved)
        # sub-group -> parent expansion map, shared by every coverage
        # query of this selector (exhaustive Step 2 issues one query
        # per feasible combination)
        self._parents = {m.name: m for m in interleaved.messages}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def select(
        self, method: str = "knapsack", packing: bool = True
    ) -> SelectionResult:
        """Run Steps 1-3 and return the selected traced set."""
        if method not in METHODS:
            raise SelectionError(
                f"unknown selection method {method!r}; choose one of {METHODS}"
            )
        if method == "exhaustive":
            combination, gain = self._select_exhaustive()
        else:
            combination, gain = self._select_knapsack()

        packed: Tuple[Message, ...] = ()
        if packing and self.subgroups:
            result: PackingResult = pack_trace_buffer(
                self.model,
                combination,
                self.buffer_width,
                self.subgroups,
                policy=self.subgroup_policy,
                budget=self.budget,
            )
            packed = result.packed
            gain = result.gain
        traced = MessageCombination(tuple(combination) + packed)
        coverage = self.coverage(traced)
        if self.budget is None:
            budget_fields = {}
        else:
            budget_fields = dict(
                budget_mode=self.budget.mode,
                capacity_bits=self.budget.capacity_bits,
                cost_bits=sum(
                    self.budget.message_cost_bits(m) for m in traced
                ),
                guard_band=self.budget.guard_band,
            )
        return SelectionResult(
            combination=combination,
            packed=packed,
            gain=gain,
            coverage=coverage,
            buffer_width=self.buffer_width,
            method=method,
            **budget_fields,
        )

    def evaluate(self, combination: Iterable[Message]) -> Tuple[float, float]:
        """``(gain, coverage)`` of an arbitrary combination -- used by
        the Figure-5 correlation experiment."""
        combo = MessageCombination(combination)
        return self.model.gain(combo), self.coverage(combo)

    def coverage(self, traced: Iterable[Message]) -> float:
        """Flow specification coverage of *traced* over ``U``,
        expanding packed sub-groups to their parents for visibility."""
        parents = self._parents
        expanded = [
            parents.get(m.parent, m) if m.parent is not None else m
            for m in traced
        ]
        return flow_specification_coverage(self.interleaved, expanded)

    # ------------------------------------------------------------------
    # step 2 engines
    # ------------------------------------------------------------------
    def _candidate_pool(self) -> List[Message]:
        """Scenario messages that individually fit the buffer.

        Under an effective budget, "fit" means the message's expected
        encoded bits fit the bit budget -- a message wider than one
        physical entry is still a candidate.
        """
        if self.budget is not None:
            budget = self.budget
            return sorted(
                m
                for m in self.interleaved.messages
                if budget.message_cost_bits(m) <= budget.capacity_bits
            )
        return sorted(
            m for m in self.interleaved.messages if m.width <= self.buffer_width
        )

    def _select_exhaustive(self) -> Tuple[MessageCombination, float]:
        """Argmax of the gain over every feasible combination (Step 1+2).

        Each combination is scored with the O(|combo|) additive gain
        and the O(|combo|) bitset coverage, so the whole enumeration is
        O(#combinations x |combo|) -- the transition relation is never
        rescanned.
        """
        best: Optional[MessageCombination] = None
        best_key: Tuple[float, float, int, Tuple[str, ...]] = (-1.0, -1.0, -1, ())
        scored = 0
        with perf.timed("select_exhaustive"):
            for combo in feasible_combinations(
                self._candidate_pool(), self.buffer_width, budget=self.budget
            ):
                scored += 1
                gain = self.model.gain(combo)
                # ties: prefer higher gain, then higher coverage (the other
                # stated optimization objective), then fuller buffer, then a
                # deterministic (lexicographically smallest) name set
                key = (
                    gain,
                    self.coverage(combo),
                    combo.total_width,
                    _inverted_names(combo),
                )
                if key > best_key:
                    best, best_key = combo, key
        perf.add("combinations_scored", scored)
        if best is None:
            raise SelectionError(
                "no message fits the trace buffer "
                f"({self.buffer_width} bits)"
            )
        return best, best_key[0]

    def _select_knapsack(self) -> Tuple[MessageCombination, float]:
        """Exact 0/1 knapsack: weights = bit widths (or expected
        encoded bits under an effective budget), values = additive
        per-message gain contributions."""
        pool = self._candidate_pool()
        if not pool:
            raise SelectionError(
                "no message fits the trace buffer "
                f"({self.buffer_width} bits)"
            )
        if self.budget is not None:
            capacity = self.budget.capacity_bits
            cost_of = self.budget.message_cost_bits
        else:
            capacity = self.buffer_width
            cost_of = _message_width
        # dp[c] = best (gain, width, inverted-names, chosen) with width <= c
        empty = (0.0, 0, (), ())
        dp: List[Tuple[float, int, Tuple[str, ...], Tuple[Message, ...]]] = [
            empty
        ] * (capacity + 1)
        dp_steps = 0
        with perf.timed("select_knapsack"):
            for item in pool:
                item_cost = cost_of(item)
                dp_steps += max(0, capacity - item_cost + 1)
                for c in range(capacity, item_cost - 1, -1):
                    gain, used, _, chosen = dp[c - item_cost]
                    cand_gain = gain + self.model.message_contribution(item)
                    cand_width = used + item_cost
                    cand_chosen = chosen + (item,)
                    cand = (
                        cand_gain,
                        cand_width,
                        _inverted_names(cand_chosen),
                        cand_chosen,
                    )
                    if cand[:3] > dp[c][:3]:
                        dp[c] = cand
        perf.add("knapsack_dp_steps", dp_steps)
        gain, _, _, chosen = dp[capacity]
        if not chosen:
            # all contributions were zero: fall back to the widest message
            chosen = (max(pool, key=lambda m: (m.width, m.name)),)
            gain = self.model.message_contribution(chosen[0])
        return MessageCombination(chosen), gain


def _message_width(message: Message) -> int:
    """Per-message cost of the paper's worst-case width rule."""
    return message.width


def _inverted_names(messages: Iterable[Message]) -> Tuple[str, ...]:
    """Sort key that prefers lexicographically *smaller* name sets when
    compared with ``>`` (each character's code point is negated)."""
    names = tuple(sorted(m.name for m in messages))
    return tuple(
        "".join(chr(0x10FFFF - ord(ch)) for ch in name) for name in names
    )


def select_messages(
    interleaved: InterleavedFlow,
    buffer_width: int,
    subgroups: Iterable[Message] = (),
    method: str = "knapsack",
    packing: bool = True,
    subgroup_policy: str = "proportional",
    budget: Optional["EffectiveWidthBudget"] = None,
) -> SelectionResult:
    """Functional one-shot wrapper around :class:`MessageSelector`."""
    selector = MessageSelector(
        interleaved,
        buffer_width,
        subgroups=subgroups,
        subgroup_policy=subgroup_policy,
        budget=budget,
    )
    return selector.select(method=method, packing=packing)
