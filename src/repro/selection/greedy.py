"""Coverage-greedy message selection (ablation baseline).

The paper optimizes *information gain* and validates it against *flow
specification coverage* (Figure 5).  A natural alternative is to
maximize coverage directly: coverage is a monotone submodular set
function (a union of per-message visible-state sets), so the classic
greedy gives a (1 - 1/e)-approximation under the knapsack constraint.

This selector exists for the ablation bench
(`benchmarks/test_ablation_objectives.py`): it quantifies how close
the paper's gain-driven choice lands to direct coverage maximization --
on our scenarios they coincide or nearly coincide, which is Figure 5's
claim made operational.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set, Tuple

from repro.core.coverage import visible_states
from repro.core.interleave import InterleavedFlow
from repro.core.message import Message, MessageCombination
from repro.errors import SelectionError


def select_by_coverage(
    interleaved: InterleavedFlow,
    buffer_width: int,
    rule: str = "ratio",
) -> MessageCombination:
    """Greedy coverage maximization under the width budget.

    Parameters
    ----------
    interleaved:
        The usage scenario's interleaved flow.
    buffer_width:
        Trace buffer width in bits.
    rule:
        ``"ratio"`` (default): pick the message with the best
        newly-covered-states-per-bit ratio -- the standard greedy for
        submodular maximization under a knapsack constraint.
        ``"absolute"``: pick the largest absolute coverage gain that
        fits.

    Returns
    -------
    MessageCombination
        The greedily selected combination (width <= *buffer_width*).
    """
    if buffer_width <= 0:
        raise SelectionError(
            f"trace buffer width must be positive, got {buffer_width}"
        )
    if rule not in ("ratio", "absolute"):
        raise SelectionError(
            f"unknown greedy rule {rule!r}; choose 'ratio' or 'absolute'"
        )
    pool: List[Message] = sorted(
        m for m in interleaved.messages if m.width <= buffer_width
    )
    visible_of = {m: visible_states(interleaved, [m]) for m in pool}
    covered: Set[Hashable] = set()
    chosen: List[Message] = []
    remaining = buffer_width
    while True:
        best: Optional[Message] = None
        best_key: Tuple[float, int, str] = (-1.0, 0, "")
        for m in pool:
            if m in chosen or m.width > remaining:
                continue
            gain = len(visible_of[m] - covered)
            score = gain / m.width if rule == "ratio" else float(gain)
            key = (score, gain, m.name)
            if key > best_key:
                best, best_key = m, key
        if best is None or best_key[1] == 0:
            # nothing fits, or nothing adds coverage: try to fill the
            # buffer with zero-gain messages only under 'absolute'
            break
        chosen.append(best)
        covered |= visible_of[best]
        remaining -= best.width
    return MessageCombination(chosen)
