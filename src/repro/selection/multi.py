"""Joint message selection across multiple usage scenarios.

The paper selects per usage scenario; silicon ships with *one* trace
buffer configuration at a time, and reconfiguring between scenarios is
not always possible (e.g. a long soak test cycles through scenarios).
Joint selection picks a single traced set maximizing the *summed*
information gain across scenarios -- still an exact knapsack, because
each scenario's gain is additive per message and sums of additive
functions stay additive.

Table 5's "usage scenario" column is the per-scenario view of the same
idea: messages like ``siincu`` that serve several scenarios are
exactly the ones joint selection favors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.coverage import flow_specification_coverage
from repro.core.information import InformationModel
from repro.core.interleave import InterleavedFlow
from repro.core.message import Message, MessageCombination
from repro.errors import SelectionError


@dataclass(frozen=True)
class JointSelectionResult:
    """A single traced set evaluated against every scenario.

    Attributes
    ----------
    combination:
        The jointly selected messages.
    total_gain:
        Sum of per-scenario information gains.
    per_scenario_gain / per_scenario_coverage:
        The selection's quality in each individual scenario.
    """

    combination: MessageCombination
    buffer_width: int
    total_gain: float
    per_scenario_gain: Mapping[str, float]
    per_scenario_coverage: Mapping[str, float]

    @property
    def utilization(self) -> float:
        return self.combination.total_width / self.buffer_width

    @property
    def min_coverage(self) -> float:
        """The worst scenario's coverage (robustness measure)."""
        return min(self.per_scenario_coverage.values())


def select_jointly(
    interleavings: Mapping[str, InterleavedFlow],
    buffer_width: int,
    weights: Optional[Mapping[str, float]] = None,
) -> JointSelectionResult:
    """One traced set for all *interleavings* (scenario name -> flow).

    Parameters
    ----------
    interleavings:
        The scenarios' interleaved flows.
    buffer_width:
        Trace buffer width in bits.
    weights:
        Optional per-scenario weight (e.g. expected validation time
        share); defaults to 1 each.

    Raises
    ------
    SelectionError
        On an empty scenario set, or when no message fits the buffer.
    """
    if not interleavings:
        raise SelectionError("joint selection needs at least one scenario")
    if buffer_width <= 0:
        raise SelectionError(
            f"trace buffer width must be positive, got {buffer_width}"
        )
    weight_of = {
        name: (weights or {}).get(name, 1.0) for name in interleavings
    }
    models = {
        name: InformationModel(u) for name, u in interleavings.items()
    }
    # the union message pool with summed weighted contributions
    values: Dict[Message, float] = {}
    for name, model in models.items():
        for message in interleavings[name].messages:
            if message.width > buffer_width:
                continue
            values[message] = values.get(message, 0.0) + (
                weight_of[name] * model.message_contribution(message)
            )
    if not values:
        raise SelectionError(
            f"no message fits the trace buffer ({buffer_width} bits)"
        )

    # exact 0/1 knapsack over the union pool
    items = sorted(values)
    empty = (0.0, 0, ())
    dp: List[Tuple[float, int, Tuple[Message, ...]]] = [empty] * (
        buffer_width + 1
    )
    for item in items:
        for capacity in range(buffer_width, item.width - 1, -1):
            gain, used, chosen = dp[capacity - item.width]
            candidate = (
                gain + values[item],
                used + item.width,
                chosen + (item,),
            )
            if candidate[:2] > dp[capacity][:2]:
                dp[capacity] = candidate
    total_gain, _, chosen = dp[buffer_width]
    combination = MessageCombination(chosen)

    per_gain = {
        name: models[name].gain(combination) for name in interleavings
    }
    per_coverage = {
        name: flow_specification_coverage(u, combination)
        for name, u in interleavings.items()
    }
    return JointSelectionResult(
        combination=combination,
        buffer_width=buffer_width,
        total_gain=total_gain,
        per_scenario_gain=per_gain,
        per_scenario_coverage=per_coverage,
    )
