"""Step 1 of the selection method: width-feasible message combinations.

From the set of all messages of the participating flows of a usage
scenario, enumerate every message combination (Definition 6) whose
total bit width fits within the available trace buffer width.  For the
running example of the paper (3 one-bit messages, 2-bit buffer) this
yields six of the seven non-empty subsets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.message import Message, MessageCombination
from repro.errors import SelectionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compress.cost import EffectiveWidthBudget

#: Enumerating all subsets of more messages than this is refused --
#: use the knapsack selector instead (see DESIGN.md, "Additivity").
MAX_EXHAUSTIVE_MESSAGES = 22


def feasible_combinations(
    messages: Iterable[Message],
    buffer_width: int,
    include_empty: bool = False,
    budget: Optional["EffectiveWidthBudget"] = None,
) -> Iterator[MessageCombination]:
    """Lazily enumerate combinations with ``W(M) <= buffer_width``.

    The enumeration is depth-first over a sorted message list and prunes
    on width, so it never materializes infeasible subsets.

    Parameters
    ----------
    messages:
        The candidate message pool (duplicates are collapsed).
    buffer_width:
        Available trace buffer width in bits; must be positive.
    include_empty:
        Whether to yield the empty combination (excluded by default --
        it is never a useful tracing candidate).
    budget:
        Optional compression-aware bit budget
        (:class:`repro.compress.cost.EffectiveWidthBudget`).  When
        given, a combination is feasible iff the sum of its expected
        *encoded* bits fits ``budget.capacity_bits`` -- the per-message
        cost stays additive (see the cost-model module docs), so the
        same depth-first pruning applies unchanged.

    Raises
    ------
    SelectionError
        If *buffer_width* is not positive, or the pool is too large for
        exhaustive enumeration (:data:`MAX_EXHAUSTIVE_MESSAGES`).
    """
    if buffer_width <= 0:
        raise SelectionError(
            f"trace buffer width must be positive, got {buffer_width}"
        )
    pool: List[Message] = sorted(set(messages))
    if len(pool) > MAX_EXHAUSTIVE_MESSAGES:
        raise SelectionError(
            f"{len(pool)} messages is too many for exhaustive subset "
            f"enumeration (limit {MAX_EXHAUSTIVE_MESSAGES}); use the "
            "knapsack selector"
        )
    if budget is None:
        capacity = buffer_width
        cost_of = _message_width
    else:
        capacity = budget.capacity_bits
        cost_of = budget.message_cost_bits
    if include_empty:
        yield MessageCombination()

    def extend(
        start: int, chosen: Tuple[Message, ...], used: int
    ) -> Iterator[MessageCombination]:
        for position in range(start, len(pool)):
            candidate = pool[position]
            cost = used + cost_of(candidate)
            if cost > capacity:
                continue
            combo = chosen + (candidate,)
            yield MessageCombination(combo)
            yield from extend(position + 1, combo, cost)

    yield from extend(0, (), 0)


def _message_width(message: Message) -> int:
    """Per-message cost of the paper's worst-case width rule."""
    return message.width


def count_feasible_combinations(
    messages: Iterable[Message],
    buffer_width: int,
    budget: Optional["EffectiveWidthBudget"] = None,
) -> int:
    """Number of non-empty feasible combinations (for reporting)."""
    return sum(
        1 for _ in feasible_combinations(messages, buffer_width, budget=budget)
    )


def widest_feasible(
    messages: Sequence[Message], buffer_width: int
) -> MessageCombination:
    """The feasible combination with the largest total width.

    Used by utilization reporting; ties break lexicographically on
    message names for determinism.
    """
    best: MessageCombination = MessageCombination()
    for combo in feasible_combinations(messages, buffer_width):
        if (combo.total_width, combo.names()) > (best.total_width, best.names()):
            best = combo
    return best
