"""The on-chip trace buffer model.

A trace buffer has a *width* (bits per entry) and a *depth* (number of
entries).  Message selection guarantees that everything routed to the
buffer fits the width; the buffer itself enforces that invariant,
masks sub-group captures down to their slice of the parent payload, and
keeps only the most recent *depth* entries (ring-buffer semantics, the
usual silicon behaviour).

Two capture models are provided:

* :class:`TraceBuffer` -- the paper's uncompressed buffer: one entry
  per captured message (or beat), ring overwrite past *depth*.
* :class:`CompressedTraceBuffer` -- the same filtering and masking in
  front of the :mod:`repro.compress` codec: captures are encoded into
  framed bitstream bits against the physical ``width x depth`` bit
  budget, and overflow evicts whole *frames* (oldest first) instead of
  single entries.

Both models report ring-overwrite pressure -- entries or frames
evicted, payload bits overwritten -- through their ``last_stats``
attribute and the :mod:`repro.perf` stage counters, so ``repro
profile`` shows how much history a given geometry actually retains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import perf
from repro.core.message import IndexedMessage, Message
from repro.errors import TraceBufferError
from repro.sim.engine import TraceRecord


@dataclass(frozen=True)
class CapturedMessage:
    """One trace buffer entry.

    ``captured_as`` names the traced message the entry belongs to --
    for a sub-group capture it is the sub-group, while ``message`` is
    the full indexed message that occurred on the interface.
    """

    cycle: int
    message: IndexedMessage
    captured_as: Message
    value: int

    @property
    def is_partial(self) -> bool:
        """Whether only a slice of the message was captured."""
        return self.captured_as.name != self.message.message.name


@dataclass(frozen=True)
class CaptureStats:
    """Ring-overwrite accounting of one :meth:`capture` call.

    Attributes
    ----------
    captured:
        Entries that survived in the buffer.
    evicted:
        Entries overwritten by the ring (or lost to frame eviction in
        compressed mode).
    overwritten_bits:
        Physical bits of buffer history those evictions destroyed.
    capacity_bits:
        The buffer's physical bit budget (``width x depth``).
    used_bits:
        Bits the surviving capture occupies.
    evicted_frames:
        Whole frames dropped (compressed mode only; ``0`` otherwise).
    """

    captured: int
    evicted: int
    overwritten_bits: int
    capacity_bits: int
    used_bits: int
    evicted_frames: int = 0

    @property
    def overflowed(self) -> bool:
        """Whether the capture stream outgrew the buffer."""
        return self.evicted > 0

    @property
    def utilization(self) -> float:
        """Occupied fraction of the physical bit budget, with overflow
        pinned to 1.0 (the buffer cannot be more than full)."""
        if self.capacity_bits == 0:
            return 0.0
        return min(1.0, self.used_bits / self.capacity_bits)


class TraceBuffer:
    """A width x depth trace buffer capturing selected messages.

    Parameters
    ----------
    width:
        Entry width in bits (32 throughout the paper's experiments).
    depth:
        Number of entries retained; older entries are overwritten.
    traced:
        The traced set from message selection -- plain messages and/or
        sub-groups.
    """

    def __init__(
        self, width: int, depth: int, traced: Iterable[Message]
    ) -> None:
        if width <= 0:
            raise TraceBufferError(f"width must be positive, got {width}")
        if depth <= 0:
            raise TraceBufferError(f"depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.traced: Tuple[Message, ...] = tuple(sorted(set(traced)))
        total = sum(m.width for m in self.traced)
        if total > width:
            raise TraceBufferError(
                f"traced set needs {total} bits but the buffer entry is "
                f"{width} bits wide"
            )
        self._full: Dict[str, Message] = {
            m.name: m for m in self.traced if m.parent is None
        }
        self._partial: Dict[str, Message] = {}
        for m in self.traced:
            if m.parent is not None and m.parent not in self._full:
                self._partial[m.parent] = m
        #: Overwrite accounting of the most recent :meth:`capture`.
        self.last_stats: Optional[CaptureStats] = None

    @property
    def utilization(self) -> float:
        """Fraction of the entry width used by the traced set."""
        return sum(m.width for m in self.traced) / self.width

    def visible_count(self, records: Sequence[TraceRecord]) -> int:
        """How many of *records* the buffer would capture if its depth
        were unbounded (used to detect ring-buffer truncation)."""
        return sum(
            1
            for r in records
            if r.message.message.name in self._full
            or r.message.message.name in self._partial
        )

    def capture(self, records: Sequence[TraceRecord]) -> Tuple[CapturedMessage, ...]:
        """Filter a simulation record stream through the buffer.

        Full messages are stored verbatim; messages traced only through
        a sub-group are masked down to the sub-group's low
        ``sub.width`` bits.  Only the last *depth* captures survive.
        """
        captured: List[CapturedMessage] = []
        for record in records:
            name = record.message.message.name
            if name in self._full:
                traced = self._full[name]
                if traced.beats == 1:
                    captured.append(
                        CapturedMessage(
                            cycle=record.cycle,
                            message=record.message,
                            captured_as=traced,
                            value=record.value,
                        )
                    )
                else:
                    # multi-cycle message: one entry per beat, width
                    # bits each (footnote 2 of the paper)
                    mask = (1 << traced.width) - 1
                    for beat in range(traced.beats):
                        captured.append(
                            CapturedMessage(
                                cycle=record.cycle + beat,
                                message=record.message,
                                captured_as=traced,
                                value=(record.value >> (beat * traced.width))
                                & mask,
                            )
                        )
            elif name in self._partial:
                sub = self._partial[name]
                mask = (1 << sub.width) - 1
                captured.append(
                    CapturedMessage(
                        cycle=record.cycle,
                        message=record.message,
                        captured_as=sub,
                        value=record.value & mask,
                    )
                )
        evicted = max(0, len(captured) - self.depth)
        kept = tuple(captured[-self.depth:])
        self.last_stats = CaptureStats(
            captured=len(kept),
            evicted=evicted,
            overwritten_bits=evicted * self.width,
            capacity_bits=self.width * self.depth,
            used_bits=len(kept) * self.width,
        )
        if evicted:
            perf.add("tracebuffer_evictions", evicted)
            perf.add("tracebuffer_overwritten_bits", evicted * self.width)
        return kept


class CompressedTraceBuffer:
    """A ``width x depth`` buffer capturing *encoded* message streams.

    Same filtering and sub-group masking as :class:`TraceBuffer`, but
    captures pass through the :mod:`repro.compress` codec and are
    charged their real encoded bits against the physical
    ``width * depth`` bit budget.  The traced set may therefore exceed
    the entry width -- including individual messages wider than one
    entry, which the uncompressed buffer cannot hold at all.

    Overflow semantics follow the framed bitstream: the buffer evicts
    the *oldest whole data frames* until the surviving stream (header
    frame included) fits the budget -- the hardware analogue of
    dropping sync-delimited compression blocks rather than tearing one
    mid-record.

    Parameters
    ----------
    width, depth:
        Physical geometry; the bit budget is their product.
    traced:
        The traced set -- plain messages and/or sub-groups; unlike
        :class:`TraceBuffer` there is no per-entry width constraint.
    records_per_frame:
        Eviction granularity (records per encoded frame).  Smaller
        frames lose less history per eviction but pay more framing
        overhead.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        traced: Iterable[Message],
        records_per_frame: int = 8,
        scenario: str = "",
        seed: int = 0,
    ) -> None:
        if width <= 0:
            raise TraceBufferError(f"width must be positive, got {width}")
        if depth <= 0:
            raise TraceBufferError(f"depth must be positive, got {depth}")
        # deferred so `import repro.sim` stays free of the compress /
        # mining / runtime stack
        from repro.compress.encoder import TraceEncoder, slice_widths_for

        self.width = width
        self.depth = depth
        self.capacity_bits = width * depth
        self.traced: Tuple[Message, ...] = tuple(sorted(set(traced)))
        self._full: Dict[str, Message] = {
            m.name: m for m in self.traced if m.parent is None
        }
        self._partial: Dict[str, Message] = {}
        for m in self.traced:
            if m.parent is not None and m.parent not in self._full:
                self._partial[m.parent] = m
        self._encoder = TraceEncoder(
            scenario=scenario,
            seed=seed,
            slice_widths=slice_widths_for(self.traced),
            records_per_frame=records_per_frame,
        )
        #: Overwrite accounting of the most recent :meth:`capture`.
        self.last_stats: Optional[CaptureStats] = None
        #: Surviving framed bitstream of the most recent capture
        #: (header frame + un-evicted data frames) -- what a debugger
        #: would read back off-chip and feed to the decoder.
        self.last_bitstream: bytes = b""

    def visible_count(self, records: Sequence[TraceRecord]) -> int:
        """How many of *records* the buffer would capture if its bit
        budget were unbounded."""
        return sum(
            1
            for r in records
            if r.message.message.name in self._full
            or r.message.message.name in self._partial
        )

    def capture(
        self, records: Sequence[TraceRecord]
    ) -> Tuple[CapturedMessage, ...]:
        """Filter, mask, encode, and ring-evict a record stream."""
        filtered: List[TraceRecord] = []
        captured: List[CapturedMessage] = []
        for record in records:
            name = record.message.message.name
            if name in self._full:
                traced = self._full[name]
                value = record.value
            elif name in self._partial:
                traced = self._partial[name]
                value = record.value & ((1 << traced.width) - 1)
            else:
                continue
            filtered.append(
                TraceRecord(
                    cycle=record.cycle, message=record.message, value=value
                )
            )
            captured.append(
                CapturedMessage(
                    cycle=record.cycle,
                    message=record.message,
                    captured_as=traced,
                    value=value,
                )
            )
        encoded = self._encoder.encode(filtered)
        budget = self.capacity_bits - encoded.header_bits
        spans = list(encoded.spans)
        used_bits = sum(s.size_bits for s in spans)
        evicted_frames = 0
        evicted_records = 0
        overwritten_bits = 0
        while spans and used_bits > budget:
            oldest = spans.pop(0)
            used_bits -= oldest.size_bits
            evicted_frames += 1
            evicted_records += oldest.record_count
            overwritten_bits += oldest.size_bits
        first = spans[0].start if spans else len(captured)
        kept = tuple(captured[first:])
        # surviving bitstream: header + un-evicted frames (frames are
        # laid out sequentially after the header)
        offset = encoded.header_bits // 8
        skip = sum(
            s.size_bits // 8 for s in encoded.spans[:evicted_frames]
        )
        self.last_bitstream = (
            encoded.data[:offset] + encoded.data[offset + skip:]
        )
        self.last_stats = CaptureStats(
            captured=len(kept),
            evicted=evicted_records,
            overwritten_bits=overwritten_bits,
            capacity_bits=self.capacity_bits,
            used_bits=encoded.header_bits + used_bits,
            evicted_frames=evicted_frames,
        )
        if evicted_records:
            perf.add("tracebuffer_evictions", evicted_records)
            perf.add("tracebuffer_overwritten_bits", overwritten_bits)
            perf.add("tracebuffer_evicted_frames", evicted_frames)
        return kept
