"""The on-chip trace buffer model.

A trace buffer has a *width* (bits per entry) and a *depth* (number of
entries).  Message selection guarantees that everything routed to the
buffer fits the width; the buffer itself enforces that invariant,
masks sub-group captures down to their slice of the parent payload, and
keeps only the most recent *depth* entries (ring-buffer semantics, the
usual silicon behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.message import IndexedMessage, Message
from repro.errors import TraceBufferError
from repro.sim.engine import TraceRecord


@dataclass(frozen=True)
class CapturedMessage:
    """One trace buffer entry.

    ``captured_as`` names the traced message the entry belongs to --
    for a sub-group capture it is the sub-group, while ``message`` is
    the full indexed message that occurred on the interface.
    """

    cycle: int
    message: IndexedMessage
    captured_as: Message
    value: int

    @property
    def is_partial(self) -> bool:
        """Whether only a slice of the message was captured."""
        return self.captured_as.name != self.message.message.name


class TraceBuffer:
    """A width x depth trace buffer capturing selected messages.

    Parameters
    ----------
    width:
        Entry width in bits (32 throughout the paper's experiments).
    depth:
        Number of entries retained; older entries are overwritten.
    traced:
        The traced set from message selection -- plain messages and/or
        sub-groups.
    """

    def __init__(
        self, width: int, depth: int, traced: Iterable[Message]
    ) -> None:
        if width <= 0:
            raise TraceBufferError(f"width must be positive, got {width}")
        if depth <= 0:
            raise TraceBufferError(f"depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.traced: Tuple[Message, ...] = tuple(sorted(set(traced)))
        total = sum(m.width for m in self.traced)
        if total > width:
            raise TraceBufferError(
                f"traced set needs {total} bits but the buffer entry is "
                f"{width} bits wide"
            )
        self._full: Dict[str, Message] = {
            m.name: m for m in self.traced if m.parent is None
        }
        self._partial: Dict[str, Message] = {}
        for m in self.traced:
            if m.parent is not None and m.parent not in self._full:
                self._partial[m.parent] = m

    @property
    def utilization(self) -> float:
        """Fraction of the entry width used by the traced set."""
        return sum(m.width for m in self.traced) / self.width

    def visible_count(self, records: Sequence[TraceRecord]) -> int:
        """How many of *records* the buffer would capture if its depth
        were unbounded (used to detect ring-buffer truncation)."""
        return sum(
            1
            for r in records
            if r.message.message.name in self._full
            or r.message.message.name in self._partial
        )

    def capture(self, records: Sequence[TraceRecord]) -> Tuple[CapturedMessage, ...]:
        """Filter a simulation record stream through the buffer.

        Full messages are stored verbatim; messages traced only through
        a sub-group are masked down to the sub-group's low
        ``sub.width`` bits.  Only the last *depth* captures survive.
        """
        captured: List[CapturedMessage] = []
        for record in records:
            name = record.message.message.name
            if name in self._full:
                traced = self._full[name]
                if traced.beats == 1:
                    captured.append(
                        CapturedMessage(
                            cycle=record.cycle,
                            message=record.message,
                            captured_as=traced,
                            value=record.value,
                        )
                    )
                else:
                    # multi-cycle message: one entry per beat, width
                    # bits each (footnote 2 of the paper)
                    mask = (1 << traced.width) - 1
                    for beat in range(traced.beats):
                        captured.append(
                            CapturedMessage(
                                cycle=record.cycle + beat,
                                message=record.message,
                                captured_as=traced,
                                value=(record.value >> (beat * traced.width))
                                & mask,
                            )
                        )
            elif name in self._partial:
                sub = self._partial[name]
                mask = (1 << sub.width) - 1
                captured.append(
                    CapturedMessage(
                        cycle=record.cycle,
                        message=record.message,
                        captured_as=sub,
                        value=record.value & mask,
                    )
                )
        return tuple(captured[-self.depth:])
