"""Regression-test library in the style of the ``fc1_all_T2`` suite.

The paper drives its case studies with five tests from the OpenSPARC
T2 ``fc1_all_T2`` regression environment, each exercising two or more
IPs and their flows.  This module defines the equivalent five named
tests over our T2 model: a scenario, a seed, and delay bounds that set
the run length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.engine import SimulationTrace, TransactionSimulator
from repro.soc.t2.scenarios import UsageScenario, scenario


@dataclass(frozen=True)
class RegressionTest:
    """One named regression test.

    Attributes
    ----------
    name:
        Test name (fc1-style).
    scenario_number:
        Which Table-1 usage scenario the test exercises.
    seed:
        Simulation seed.
    min_delay, max_delay:
        Inter-message delay bounds in cycles; large bounds model the
        hundreds of thousands of cycles real symptoms take to manifest.
    """

    name: str
    scenario_number: int
    seed: int
    min_delay: int = 16
    max_delay: int = 4096

    def build_scenario(self, instances: int = 1) -> UsageScenario:
        return scenario(self.scenario_number, instances=instances)

    def run(self, instances: int = 1) -> SimulationTrace:
        """Execute the test and return its golden trace."""
        sc = self.build_scenario(instances)
        simulator = TransactionSimulator(
            sc.interleaved(),
            scenario_name=sc.name,
            min_delay=self.min_delay,
            max_delay=self.max_delay,
        )
        return simulator.run(seed=self.seed)


#: The five fc1-style regression tests of the experimental setup.
REGRESSION_TESTS: Tuple[RegressionTest, ...] = (
    RegressionTest("fc1_pio_mondo_basic", 1, seed=101),
    RegressionTest("fc1_pio_mondo_stress", 1, seed=137),
    RegressionTest("fc1_ncu_updown_mondo", 2, seed=211),
    RegressionTest("fc1_ncu_mondo_deque", 2, seed=263),
    RegressionTest("fc1_mixed_pio_mem", 3, seed=307),
)


def regression_suite() -> Dict[str, RegressionTest]:
    """The regression tests by name."""
    return {t.name: t for t in REGRESSION_TESTS}
