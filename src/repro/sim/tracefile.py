"""The output trace file format of Figure 4.

A plain-text, line-oriented format that survives diffing and greps --
the way post-silicon labs actually look at traces:

.. code-block:: text

    # repro-trace v1 scenario="Scenario 1" seed=7
    140 2:reqtot 0x5a
    203 2:grant 0x3

Each line is ``<cycle> <index>:<message> <hex value>``.  Scenario
names are quoted with ``"`` and ``\\`` backslash-escaped so arbitrary
labels round-trip.

The line-level grammar is exposed as :func:`parse_header`,
:func:`parse_record_line`, and :func:`format_record` so the batch
reader here and the incremental ingester
(:class:`repro.stream.ingest.IncrementalTraceParser`) parse
byte-identically by construction.
"""

from __future__ import annotations

import io
import re
from typing import Mapping, Optional, Sequence, TextIO, Tuple

from repro.core.message import IndexedMessage, Message
from repro.errors import SimulationError
from repro.sim.engine import TraceRecord

_HEADER = re.compile(
    r'^# repro-trace v1 scenario="(?P<scenario>(?:[^"\\]|\\.)*)" '
    r"seed=(?P<seed>-?\d+)$"
)
_LINE = re.compile(
    r"^(?P<cycle>\d+) (?P<index>\d+):(?P<name>\S+) 0x(?P<value>[0-9a-fA-F]+)$"
)
_UNESCAPE = re.compile(r"\\(.)")


def escape_scenario(scenario: str) -> str:
    """Backslash-escape a scenario label for the quoted header field."""
    return scenario.replace("\\", "\\\\").replace('"', '\\"')


def unescape_scenario(escaped: str) -> str:
    """Inverse of :func:`escape_scenario`."""
    return _UNESCAPE.sub(r"\1", escaped)


def format_header(scenario: str, seed: int) -> str:
    """The header line (without trailing newline)."""
    return f'# repro-trace v1 scenario="{escape_scenario(scenario)}" seed={seed}'


def format_record(record: TraceRecord) -> str:
    """One record line (without trailing newline)."""
    return (
        f"{record.cycle} {record.message.index}:"
        f"{record.message.message.name} 0x{record.value:x}"
    )


def parse_header(line: str) -> Optional[Tuple[str, int]]:
    """Parse a header line into ``(scenario, seed)``; ``None`` when the
    line is not a well-formed v1 header."""
    match = _HEADER.match(line)
    if not match:
        return None
    return unescape_scenario(match.group("scenario")), int(match.group("seed"))


def parse_record_line(
    line: str, catalog: Mapping[str, Message]
) -> TraceRecord:
    """Parse one record line.

    Raises
    ------
    SimulationError
        When the line is malformed or names a message missing from
        *catalog* (``reason`` in the message distinguishes the two).
    """
    match = _LINE.match(line)
    if not match:
        raise SimulationError(f"bad trace line: {line!r}")
    name = match.group("name")
    try:
        message = catalog[name]
    except KeyError:
        raise SimulationError(f"unknown message {name!r}") from None
    return TraceRecord(
        cycle=int(match.group("cycle")),
        message=IndexedMessage(message, int(match.group("index"))),
        value=int(match.group("value"), 16),
    )


def write_trace_file(
    stream: TextIO,
    records: Sequence[TraceRecord],
    scenario: str = "",
    seed: int = 0,
) -> None:
    """Serialize *records* to *stream* in trace-file format."""
    stream.write(format_header(scenario, seed) + "\n")
    for r in records:
        stream.write(format_record(r) + "\n")


def read_trace_file(
    stream: TextIO, catalog: Mapping[str, Message]
) -> Tuple[Tuple[TraceRecord, ...], str, int]:
    """Parse a trace file back into records.

    Parameters
    ----------
    stream:
        The text stream to read.
    catalog:
        Message definitions by name (widths/endpoints are not stored in
        the file).

    Returns
    -------
    ``(records, scenario, seed)``

    Raises
    ------
    SimulationError
        On malformed lines or messages missing from the catalog.
    """
    first = stream.readline().rstrip("\n")
    header = parse_header(first)
    if header is None:
        raise SimulationError(f"bad trace file header: {first!r}")
    scenario, seed = header
    records = []
    for lineno, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        try:
            records.append(parse_record_line(line, catalog))
        except SimulationError as exc:
            raise SimulationError(f"trace line {lineno}: {exc}") from None
    return tuple(records), scenario, seed


def round_trip(
    records: Sequence[TraceRecord],
    catalog: Mapping[str, Message],
    scenario: str = "",
    seed: int = 0,
) -> Tuple[TraceRecord, ...]:
    """Serialize then parse (testing helper)."""
    buffer = io.StringIO()
    write_trace_file(buffer, records, scenario=scenario, seed=seed)
    buffer.seek(0)
    parsed, _, _ = read_trace_file(buffer, catalog)
    return parsed
