"""The output trace file format of Figure 4.

A plain-text, line-oriented format that survives diffing and greps --
the way post-silicon labs actually look at traces:

.. code-block:: text

    # repro-trace v1 scenario="Scenario 1" seed=7
    140 2:reqtot 0x5a
    203 2:grant 0x3

Each line is ``<cycle> <index>:<message> <hex value>``.
"""

from __future__ import annotations

import io
import re
from typing import List, Mapping, Sequence, TextIO, Tuple

from repro.core.message import IndexedMessage, Message
from repro.errors import SimulationError
from repro.sim.engine import TraceRecord

_HEADER = re.compile(
    r'^# repro-trace v1 scenario="(?P<scenario>[^"]*)" seed=(?P<seed>-?\d+)$'
)
_LINE = re.compile(
    r"^(?P<cycle>\d+) (?P<index>\d+):(?P<name>\S+) 0x(?P<value>[0-9a-fA-F]+)$"
)


def write_trace_file(
    stream: TextIO,
    records: Sequence[TraceRecord],
    scenario: str = "",
    seed: int = 0,
) -> None:
    """Serialize *records* to *stream* in trace-file format."""
    stream.write(f'# repro-trace v1 scenario="{scenario}" seed={seed}\n')
    for r in records:
        stream.write(f"{r.cycle} {r.message.index}:{r.message.message.name} "
                     f"0x{r.value:x}\n")


def read_trace_file(
    stream: TextIO, catalog: Mapping[str, Message]
) -> Tuple[Tuple[TraceRecord, ...], str, int]:
    """Parse a trace file back into records.

    Parameters
    ----------
    stream:
        The text stream to read.
    catalog:
        Message definitions by name (widths/endpoints are not stored in
        the file).

    Returns
    -------
    ``(records, scenario, seed)``

    Raises
    ------
    SimulationError
        On malformed lines or messages missing from the catalog.
    """
    first = stream.readline().rstrip("\n")
    header = _HEADER.match(first)
    if not header:
        raise SimulationError(f"bad trace file header: {first!r}")
    scenario = header.group("scenario")
    seed = int(header.group("seed"))
    records: List[TraceRecord] = []
    for lineno, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if not match:
            raise SimulationError(f"bad trace line {lineno}: {line!r}")
        name = match.group("name")
        if name not in catalog:
            raise SimulationError(
                f"trace line {lineno}: unknown message {name!r}"
            )
        records.append(
            TraceRecord(
                cycle=int(match.group("cycle")),
                message=IndexedMessage(
                    catalog[name], int(match.group("index"))
                ),
                value=int(match.group("value"), 16),
            )
        )
    return tuple(records), scenario, seed


def round_trip(
    records: Sequence[TraceRecord],
    catalog: Mapping[str, Message],
    scenario: str = "",
    seed: int = 0,
) -> Tuple[TraceRecord, ...]:
    """Serialize then parse (testing helper)."""
    buffer = io.StringIO()
    write_trace_file(buffer, records, scenario=scenario, seed=seed)
    buffer.seek(0)
    parsed, _, _ = read_trace_file(buffer, catalog)
    return parsed
