"""Signal-to-message monitors (the System-Verilog monitors of Figure 4).

For gate-level designs (the USB controller), a monitor watches a
*trigger* signal and, on each cycle it is asserted, samples a group of
*payload* signals and emits one flow message occurrence.  Running a set
of monitors over a simulation waveform turns RTL activity into the
message trace the selection and debug machinery consumes -- the exact
pipeline of the paper's experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.core.message import IndexedMessage, Message
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.signals import Value, from_bits, is_known
from repro.sim.engine import TraceRecord


@dataclass(frozen=True)
class SignalMonitor:
    """Converts RTL signal activity into one flow message.

    Attributes
    ----------
    message:
        The flow message this monitor emits.
    trigger:
        Signal name; a cycle with ``trigger == 1`` emits the message.
    payload:
        Signal names sampled (little-endian) into the message value.
    instance:
        Flow-instance index attached to emitted messages (tagging).
    """

    message: Message
    trigger: str
    payload: Tuple[str, ...]
    instance: int = 1

    def emit(self, cycle: int, values: Mapping[str, Value]) -> TraceRecord:
        bits = [values.get(s, 0) for s in self.payload]
        if any(not is_known(b) for b in bits):
            raise SimulationError(
                f"monitor for {self.message.name!r} sampled X at cycle "
                f"{cycle}"
            )
        raw = from_bits(bits)
        return TraceRecord(
            cycle=cycle,
            message=IndexedMessage(self.message, self.instance),
            value=int(raw),
        )


def run_monitors(
    monitors: Sequence[SignalMonitor],
    waves: Sequence[Mapping[str, Value]],
    circuit: Circuit = None,
) -> Tuple[TraceRecord, ...]:
    """Run *monitors* over per-cycle *waves*; records in time order.

    Parameters
    ----------
    monitors:
        The monitor set (one per interface message).
    waves:
        Per-cycle signal value maps from
        :meth:`repro.netlist.simulator.Simulator.run`.
    circuit:
        Optional netlist for eager validation that every watched signal
        exists.
    """
    if circuit is not None:
        known = circuit.signals
        for monitor in monitors:
            missing = ({monitor.trigger} | set(monitor.payload)) - known
            if missing:
                raise SimulationError(
                    f"monitor for {monitor.message.name!r} watches unknown "
                    f"signals {sorted(missing)}"
                )
    records: List[TraceRecord] = []
    for cycle, values in enumerate(waves):
        for monitor in monitors:
            if values.get(monitor.trigger) == 1:
                records.append(monitor.emit(cycle, values))
    records.sort(key=lambda r: (r.cycle, r.message.name))
    return tuple(records)
