"""Discrete-event transaction simulation of usage scenarios.

The simulator executes one run of a usage scenario: it samples an
execution of the scenario's interleaved flow uniformly at random
(seeded), assigns clock-cycle timestamps with random inter-message
delays, and gives every message occurrence a deterministic payload
value.  The result is exactly what the paper's System-Verilog monitors
record into an output trace file (Figure 4): a timestamped stream of
flow messages.

Fault injection lives in :mod:`repro.debug.injection`, which transforms
golden :class:`SimulationTrace` objects; this module stays bug-free by
construction so golden/buggy comparisons are trustworthy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.flow import Execution
from repro.core.interleave import InterleavedFlow
from repro.core.message import IndexedMessage, Message
from repro.errors import SimulationError


@dataclass(frozen=True)
class TraceRecord:
    """One observed message occurrence.

    Attributes
    ----------
    cycle:
        Clock cycle at which the message completed.
    message:
        The indexed message (instance tag included).
    value:
        The payload value carried (fits in ``message.width`` bits).
    """

    cycle: int
    message: IndexedMessage
    value: int

    @property
    def name(self) -> str:
        return self.message.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"@{self.cycle} {self.message.name}={self.value:#x}"


@dataclass(frozen=True)
class Symptom:
    """A detected failure during a run.

    ``kind`` is one of ``"hang"`` (a flow instance never completed),
    ``"bad_trap"`` (a corrupted payload was consumed), or
    ``"value_mismatch"`` (a payload differed from the golden run).
    """

    kind: str
    cycle: int
    detail: str
    message: Optional[IndexedMessage] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.upper()} @{self.cycle}: {self.detail}"


@dataclass(frozen=True)
class SimulationTrace:
    """A complete simulation run of a usage scenario.

    Attributes
    ----------
    scenario_name:
        Which scenario ran.
    execution:
        The interleaved-flow execution the run followed.
    records:
        Timestamped message occurrences, in time order.
    seed:
        RNG seed that produced the run (for reproducibility).
    total_cycles:
        Cycle count at the end of the run.
    symptom:
        Failure detected during the run; ``None`` for golden runs.
    """

    scenario_name: str
    execution: Execution
    records: Tuple[TraceRecord, ...]
    seed: int
    total_cycles: int
    symptom: Optional[Symptom] = None

    @property
    def messages(self) -> Tuple[IndexedMessage, ...]:
        """The message sequence (no timing, no payloads)."""
        return tuple(r.message for r in self.records)

    def project(self, traced: Sequence[Message]) -> Tuple[TraceRecord, ...]:
        """Records visible through a buffer tracing *traced* messages."""
        wanted = {m.name for m in traced}
        parents = {m.parent for m in traced if m.parent is not None}
        return tuple(
            r
            for r in self.records
            if r.message.message.name in wanted
            or r.message.message.name in parents
        )

    def record_for(self, message: IndexedMessage) -> Optional[TraceRecord]:
        """First record of *message*, or ``None`` if it never occurred."""
        for r in self.records:
            if r.message == message:
                return r
        return None


class TransactionSimulator:
    """Executes usage-scenario runs at the transaction level.

    Parameters
    ----------
    interleaved:
        The interleaved flow of the scenario.
    scenario_name:
        Label recorded into produced traces.
    min_delay, max_delay:
        Uniform inter-message delay bounds in clock cycles.  Real SoC
        flows take thousands of cycles between protocol steps; scale
        these up for realistic cycle counts (the shape of every
        experiment is delay-invariant).
    """

    def __init__(
        self,
        interleaved: InterleavedFlow,
        scenario_name: str = "scenario",
        min_delay: int = 1,
        max_delay: int = 64,
    ) -> None:
        if min_delay < 1 or max_delay < min_delay:
            raise SimulationError(
                f"invalid delay bounds [{min_delay}, {max_delay}]"
            )
        self.interleaved = interleaved
        self.scenario_name = scenario_name
        self.min_delay = min_delay
        self.max_delay = max_delay

    def run(self, seed: int = 0) -> SimulationTrace:
        """One golden run: sample an execution, timestamp, and value it."""
        rng = random.Random(seed)
        execution = self.interleaved.random_execution(rng)
        records: List[TraceRecord] = []
        cycle = 0
        for message in execution.messages:
            cycle += rng.randint(self.min_delay, self.max_delay)
            records.append(
                TraceRecord(
                    cycle=cycle,
                    message=message,
                    value=self._payload(message, rng),
                )
            )
        return SimulationTrace(
            scenario_name=self.scenario_name,
            execution=execution,
            records=tuple(records),
            seed=seed,
            total_cycles=cycle,
        )

    @staticmethod
    def _payload(message: IndexedMessage, rng: random.Random) -> int:
        """A deterministic payload fitting the full message content
        (multi-cycle messages carry ``width * beats`` bits)."""
        bits = message.message.content_width
        return rng.getrandbits(bits) if bits > 0 else 0
