"""Transaction-level simulation substrate.

Reproduces the experimental setup of Figure 4: the design executes a
usage scenario, monitors convert activity into flow messages, and a
trace buffer captures the selected subset.

* :mod:`repro.sim.engine` -- discrete-event execution of interleaved
  flows with clock-cycle timestamps, payload values, and fault
  injection hooks.
* :mod:`repro.sim.monitors` -- signal-to-message monitors for
  gate-level designs (the System-Verilog monitors of Figure 4).
* :mod:`repro.sim.tracebuffer` -- the on-chip trace buffer model.
* :mod:`repro.sim.tracefile` -- the output trace-file format.
* :mod:`repro.sim.testbench` -- a regression-test library in the style
  of the ``fc1_all_T2`` environment.
"""

from repro.sim.engine import (
    TransactionSimulator,
    SimulationTrace,
    TraceRecord,
    Symptom,
)
from repro.sim.tracebuffer import (
    CapturedMessage,
    CaptureStats,
    CompressedTraceBuffer,
    TraceBuffer,
)
from repro.sim.monitors import SignalMonitor, run_monitors
from repro.sim.tracefile import write_trace_file, read_trace_file
from repro.sim.testbench import RegressionTest, regression_suite

__all__ = [
    "TransactionSimulator",
    "SimulationTrace",
    "TraceRecord",
    "Symptom",
    "TraceBuffer",
    "CapturedMessage",
    "CaptureStats",
    "CompressedTraceBuffer",
    "SignalMonitor",
    "run_monitors",
    "write_trace_file",
    "read_trace_file",
    "RegressionTest",
    "regression_suite",
]
