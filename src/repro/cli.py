"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Regenerate the paper's tables/figures (all, or a named subset).
``select``
    Run message selection for a T2 usage scenario and print the result.
``debug``
    Replay one of the five debugging case studies (``--runs N`` turns
    it into a multi-seed validation campaign).
``usb``
    Run the USB baseline comparison.
``plan``
    Sweep trace-buffer widths for a scenario and print the
    coverage/width frontier.
``spec``
    Export the built-in T2 flows as a flowspec file.
``export``
    Export every experiment result as JSON.
``report``
    Build the full markdown reproduction report.
``analyze``
    Run message selection for the flows of a user-supplied flowspec
    file.
``mine``
    Mine candidate flow specifications from a simulated trace corpus
    and score them against ground truth (structural precision/recall
    plus the closed-loop selection comparison).
``compress``
    Encode a trace file into the framed compressed bitstream, decode
    one back (lossless round trip), or print bitstream statistics.
``dot``
    Dump a flow (or a scenario's interleaving) as Graphviz DOT.
``cache``
    Inspect, clear, or warm the content-addressed artifact cache.
``stream``
    Follow a trace file incrementally and watch the localization
    fraction tighten as records arrive.
``serve-demo``
    Drive N concurrent synthetic debug sessions through the streaming
    service and print throughput plus telemetry.
``serve``
    Run the networked debug service: an asyncio TCP server speaking
    the length-prefixed binary wire protocol, with sharded sessions,
    admission control, and an optional HTTP metrics port.
``loadgen``
    Replay simulator-produced trace files against a running ``serve``
    instance from worker processes and report throughput/latency.
``store``
    Inspect, verify, or compact a ``serve --data-dir`` data directory
    (write-ahead log segments and frontier snapshots) offline.
``chaos``
    Run a deterministic fault-injection soak against an in-process
    debug service (network/disk/session fault planes, a mid-soak
    crash + recovery) and check the end-to-end invariants.
``profile``
    Run interleaving + selection for a scenario under the stage
    counters of :mod:`repro.perf` and print them (states expanded,
    bitset ORs, DP steps, wall time per stage).

``tables``/``report``/``plan``/``debug``/``mine`` accept ``--jobs N`` to fan
independent work units out over a process pool (results are identical
to a serial run); the artifact cache (``REPRO_CACHE_DIR``) makes warm
re-runs skip the expensive interleaving/selection work entirely.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import __version__


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.report import ARTIFACT_TITLES, render_artifacts

    names = args.which or list(ARTIFACT_TITLES)
    unknown = [n for n in names if n not in ARTIFACT_TITLES]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}; "
              f"choose from {', '.join(ARTIFACT_TITLES)}", file=sys.stderr)
        return 2
    sections = render_artifacts(
        names, instances=args.instances, jobs=args.jobs, plot=True
    )
    print(("\n\n" + "=" * 72 + "\n\n").join(sections))
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    import json

    from repro.selection.selector import MessageSelector
    from repro.sim.engine import TransactionSimulator
    from repro.sim.tracebuffer import CompressedTraceBuffer, TraceBuffer
    from repro.soc.t2.scenarios import scenario

    sc = scenario(args.scenario, instances=args.instances)
    budget = None
    if args.compress:
        from repro.compress.cost import (
            EffectiveWidthBudget,
            cost_model_for_scenario,
        )

        model = cost_model_for_scenario(
            args.scenario, instances=args.instances
        )
        budget = EffectiveWidthBudget(
            model, args.buffer, args.depth, guard_band=args.guard_band
        )
    selector = MessageSelector(
        sc.interleaved(), args.buffer, subgroups=sc.subgroup_pool,
        budget=budget,
    )
    result = selector.select(
        method=args.method, packing=not args.no_packing
    )
    # replay one golden run through the buffer geometry so utilization
    # reflects overflow, not just entry width
    records = TransactionSimulator(sc.interleaved(), sc.name).run(
        seed=0
    ).records
    if args.compress:
        buffer = CompressedTraceBuffer(
            args.buffer, args.depth, result.traced, scenario=sc.name
        )
    else:
        buffer = TraceBuffer(args.buffer, args.depth, result.traced)
    buffer.capture(records)
    stats = buffer.last_stats
    if args.json:
        payload = {
            "scenario": args.scenario,
            "name": sc.name,
            "method": result.method,
            "buffer_width": args.buffer,
            "buffer_depth": args.depth,
            "budget_mode": result.budget_mode,
            "capacity_bits": result.capacity_bits,
            "cost_bits": result.cost_bits,
            "guard_band": result.guard_band,
            "combination": list(result.combination.names()),
            "packed": [m.name for m in result.packed],
            "gain": result.gain,
            "coverage": result.coverage,
            "utilization": result.utilization,
            "capture": {
                "captured": stats.captured,
                "evicted": stats.evicted,
                "evicted_frames": stats.evicted_frames,
                "overwritten_bits": stats.overwritten_bits,
                "used_bits": stats.used_bits,
                "capacity_bits": stats.capacity_bits,
                "utilization": stats.utilization,
                "overflowed": stats.overflowed,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{sc.name}: {sc.description}")
    u = sc.interleaved()
    print(f"interleaved flow: {u.num_states} states, "
          f"{u.num_transitions} transitions, {u.count_paths()} paths")
    if budget is not None:
        print(budget.describe())
    print(result.describe())
    overflow = (
        f", {stats.evicted} entr(ies) overwritten"
        if stats.overflowed
        else ""
    )
    print(f"capture (seed 0): {stats.captured} kept, buffer "
          f"{stats.utilization:.1%} full{overflow}")
    return 0


def _cmd_debug(args: argparse.Namespace) -> int:
    from repro.debug.casestudies import case_studies
    from repro.debug.rootcause import root_cause_catalog
    from repro.debug.session import DebugSession
    from repro.selection.selector import MessageSelector
    from repro.soc.t2.scenarios import scenario

    cs = case_studies().get(args.case_study)
    if cs is None:
        print(f"unknown case study {args.case_study}; choose 1-5",
              file=sys.stderr)
        return 2
    sc = scenario(cs.scenario_number, instances=args.instances)
    selector = MessageSelector(
        sc.interleaved(), 32, subgroups=sc.subgroup_pool
    )
    selection = selector.select(method="exhaustive", packing=True)
    session = DebugSession(
        sc, selection.traced, root_cause_catalog(cs.scenario_number)
    )
    if args.runs > 1:
        from repro.debug.campaign import ValidationCampaign

        seeds = range(cs.seed, cs.seed + args.runs)
        result = ValidationCampaign(session).run(
            cs.active_bug, seeds=seeds, jobs=args.jobs
        )
        print(f"case study {cs.number} on {sc.name} "
              f"({result.runs} failing runs, jobs={args.jobs})")
        print(f"  bug: {cs.active_bug}")
        print(f"  messages investigated: "
              f"{result.total_messages_investigated}")
        print(f"  IP pairs investigated: "
              f"{len(result.pairs_investigated)}")
        print(f"  best localization: {result.best_localization:.2%}")
        print(f"  pruned after all runs: {result.pruned_fraction:.1%}")
        causes = " / ".join(
            c.description for c in result.plausible_causes
        )
        print(f"  plausible: {causes}")
        return 0
    report = session.run(cs.active_bug, seed=cs.seed)
    print(f"case study {cs.number} on {sc.name}")
    print(f"  bug: {cs.active_bug}")
    print(f"  symptom: {report.symptom_kind}")
    print(f"  localization: {report.localization}")
    print(f"  pruned {len(report.pruning.pruned)}/"
          f"{report.pruning.total} causes "
          f"({report.pruned_fraction:.1%})")
    print(f"  plausible: {report.root_cause_text}")
    print("triage:")
    for line in report.triage().splitlines():
        print(f"  {line}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.selection.planner import format_plan, plan_buffer
    from repro.soc.t2.scenarios import scenario

    sc = scenario(args.scenario, instances=args.instances)
    plan = plan_buffer(
        sc.interleaved(),
        widths=tuple(args.widths),
        subgroups=sc.subgroup_pool,
        jobs=args.jobs,
    )
    print(f"{sc.name}: trace buffer width sweep")
    print(format_plan(plan))
    if args.target is not None:
        width = plan.minimal_width_for_coverage(args.target)
        if width is None:
            print(f"no swept width reaches {args.target:.0%} coverage")
        else:
            print(f"minimal width for {args.target:.0%} coverage: {width}")
    return 0


def _cmd_usb(args: argparse.Namespace) -> int:
    from repro.experiments.table4 import format_table4

    print(format_table4())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    text = build_report(instances=args.instances, jobs=args.jobs)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {args.output}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import write_results

    if args.output == "-":
        write_results(sys.stdout, instances=args.instances)
    else:
        with open(args.output, "w", encoding="utf-8") as stream:
            write_results(stream, instances=args.instances)
        print(f"wrote {args.output}")
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.core.flowspec import format_flowspec
    from repro.soc.t2.flows import t2_flows
    from repro.soc.t2.messages import t2_message_catalog

    catalog = t2_message_catalog()
    flows = list(t2_flows(catalog).values())
    print(format_flowspec(flows, catalog.subgroup_list), end="")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.flowspec import parse_flowspec
    from repro.core.interleave import interleave_flows
    from repro.selection.selector import MessageSelector

    with open(args.spec, encoding="utf-8") as stream:
        spec = parse_flowspec(stream)
    if not spec.flows:
        print(f"{args.spec}: no flows defined", file=sys.stderr)
        return 2
    interleaved = interleave_flows(
        list(spec.flows.values()), copies=args.copies
    )
    print(
        f"{', '.join(spec.flows)}: interleaved flow has "
        f"{interleaved.num_states} states, "
        f"{interleaved.num_transitions} transitions, "
        f"{interleaved.count_paths()} paths"
    )
    selector = MessageSelector(
        interleaved, args.buffer, subgroups=spec.subgroups
    )
    result = selector.select(
        method=args.method, packing=not args.no_packing
    )
    print(result.describe())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.runtime.cache import default_cache
    from repro.runtime.telemetry import recent_runs

    cache = default_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached artifact(s) from "
              f"{cache.directory}")
        return 0
    if args.action == "warm":
        from repro.experiments.common import warm_cache

        start = time.perf_counter()
        bundles = warm_cache(instances=args.instances)
        elapsed = time.perf_counter() - start
        stats = cache.stats
        print(f"warmed {len(bundles)} scenario selection(s) in "
              f"{elapsed:.2f}s "
              f"(cache hits={stats.hits}, misses={stats.misses})")
        print(f"cache directory: {cache.directory}")
        return 0
    # stats
    snapshot = cache.snapshot()
    runs = recent_runs()
    if args.json:
        payload = snapshot.as_dict()
        payload["runs"] = [r.as_dict() for r in runs]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"cache directory: {snapshot.directory}")
    print(f"  memory entries: {snapshot.memory_entries}")
    print(f"  disk entries:   {snapshot.disk_entries} "
          f"({snapshot.disk_bytes} bytes)")
    for name, value in snapshot.stats.items():
        print(f"  {name}: {value}")
    if runs:
        print("recent orchestrated runs:")
        for record in runs:
            print(f"  {record.name}: jobs={record.jobs} "
                  f"tasks={record.tasks_dispatched} "
                  f"failed={record.tasks_failed} "
                  f"wall={record.wall_time_s:.2f}s "
                  f"cache {record.cache_hits}h/{record.cache_misses}m")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.errors import FrontierOverflowError
    from repro.experiments.common import scenario_selection
    from repro.selection.localization import PathLocalizer
    from repro.stream import IncrementalLocalizer, IncrementalTraceParser

    bundle = scenario_selection(
        args.scenario, instances=args.instances, buffer_width=args.buffer
    )
    sc = bundle.scenario
    traced = bundle.with_packing.traced
    localizer = IncrementalLocalizer(
        mode=args.mode,
        max_frontier=args.max_frontier,
        localizer=PathLocalizer(sc.interleaved(), traced),
    )
    parser = IncrementalTraceParser(sc.catalog)
    total = localizer.localizer.total_paths
    print(f"{sc.name}: following {args.tracefile} "
          f"(mode={args.mode}, buffer={args.buffer})")
    try:
        with open(args.tracefile, encoding="utf-8") as stream:
            while True:
                chunk = stream.read(args.chunk_bytes)
                records = (
                    parser.feed(chunk) if chunk else parser.close()
                )
                consumed = localizer.observe_records(records)
                if consumed:
                    result = localizer.snapshot()
                    print(f"  after {localizer.observed_length:4d} "
                          f"captured: {result.consistent_paths}/{total} "
                          f"paths ({result.fraction:.4%}) "
                          f"frontier={localizer.frontier_size}")
                if not chunk:
                    break
    except FrontierOverflowError:
        print(f"frontier overflowed max size {args.max_frontier}; "
              "re-run with a larger --max-frontier", file=sys.stderr)
        return 1
    result = localizer.snapshot()
    print(f"trace: scenario={parser.scenario!r} seed={parser.seed} "
          f"({parser.records_emitted} records, "
          f"{localizer.observed_length} captured)")
    for diagnostic in parser.diagnostics:
        print(f"  skipped {diagnostic}", file=sys.stderr)
    print(f"localization: {result.consistent_paths}/{total} paths "
          f"({result.fraction:.4%})")
    return 0


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.common import scenario_selection
    from repro.runtime.telemetry import recent_runs
    from repro.stream import run_load_test
    from repro.stream.session import SessionLimits

    bundle = scenario_selection(
        args.scenario, instances=args.instances, buffer_width=args.buffer
    )
    sc = bundle.scenario
    report = run_load_test(
        sc.interleaved(),
        bundle.with_packing.traced,
        sessions=args.sessions,
        workers=args.workers,
        chunk_size=args.chunk,
        seed=args.seed,
        mode=args.mode,
        limits=SessionLimits(
            max_sessions=args.sessions, max_frontier=args.max_frontier
        ),
    )
    summary = report.as_dict()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"{sc.name}: {report.sessions} concurrent sessions over "
          f"{report.workers} workers (mode={report.mode}, "
          f"chunk={report.chunk_size})")
    print(f"  records fed:      {report.total_records}")
    print(f"  wall time:        {report.wall_s:.3f}s")
    print(f"  throughput:       {report.records_per_s:.0f} records/s")
    print(f"  p95 feed latency: {report.p95_feed_latency_s * 1e3:.3f}ms")
    print(f"  max feed latency: {report.max_feed_latency_s * 1e3:.3f}ms")
    print(f"  session statuses: {summary['statuses']}")
    runs = recent_runs(name_prefix="stream:")
    print(f"telemetry: {len(runs)} session record(s)")
    for record in runs[-args.sessions:][:5]:
        print(f"  {record.name}: feeds={record.tasks_dispatched} "
              f"records={record.extra['records']} "
              f"status={record.extra['status']} "
              f"fraction={record.extra['fraction']:.4%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import (
        DebugServer,
        MetricsRegistry,
        ServeContext,
        ServerConfig,
    )

    context = ServeContext.from_scenario(
        args.scenario,
        instances=args.instances,
        buffer_width=args.buffer,
        mode=args.mode,
        max_frontier=args.max_frontier,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        max_sessions=args.max_sessions,
        max_queue_depth=args.queue_depth,
        max_inflight=args.inflight,
        idle_timeout_s=args.idle_timeout,
        idle_sweep_s=args.idle_sweep,
        metrics_port=args.metrics_port,
        data_dir=args.data_dir,
        fsync=args.fsync,
        fsync_interval_s=args.fsync_interval,
        snapshot_every=args.snapshot_every,
    )
    server = DebugServer(context, config, MetricsRegistry())

    def on_ready(ready: DebugServer) -> None:
        print(
            f"{context.name}: listening on {ready.host}:{ready.port} "
            f"({config.shards} shard(s), mode={context.mode})",
            flush=True,
        )
        if config.data_dir is not None:
            recovery = server.recovery_info
            print(
                f"store: {config.data_dir} (fsync={config.fsync}, "
                f"snapshot every {config.snapshot_every} feeds); "
                f"recovered {recovery.get('sessions', 0)} session(s), "
                f"replayed {recovery.get('replayed_records', 0)} "
                f"record(s) in {recovery.get('wall_s', 0.0)}s",
                flush=True,
            )
        if ready.metrics_port is not None:
            print(
                f"metrics: http://{ready.host}:{ready.metrics_port}/metrics",
                flush=True,
            )

    asyncio.run(server.run(duration=args.duration, on_ready=on_ready))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.errors import StoreError
    from repro.store import compact_store, inspect_store, verify_store

    try:
        if args.action == "inspect":
            report = inspect_store(args.data_dir)
        elif args.action == "verify":
            report = verify_store(args.data_dir)
        else:
            report = compact_store(args.data_dir)
    except StoreError as exc:
        print(f"store: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.action == "verify":
            return 0 if report["ok"] else 1
        return 0
    print(f"data dir: {report['data_dir']}")
    if args.action == "inspect":
        meta = report["meta"] or {}
        print(f"  scenario: {meta.get('scenario', '?')} "
              f"(mode={meta.get('mode', '?')}, "
              f"shards={meta.get('shards', '?')})")
        for shard in report["shards"]:
            print(f"  {shard['shard']}:")
            for seg in shard["segments"]:
                torn = f"  TORN: {seg['torn']}" if seg["torn"] else ""
                print(f"    {seg['name']}: {seg['records']} record(s), "
                      f"lsn {seg['first_lsn']}..{seg['last_lsn']}, "
                      f"{seg['size_bytes']} byte(s){torn}")
            for snap in shard["snapshots"]:
                if snap.get("valid"):
                    print(f"    {snap['name']}: lsn {snap['wal_lsn']}, "
                          f"{snap['sessions']} session(s) + "
                          f"{snap['spilled']} spilled, "
                          f"{snap['size_bytes']} byte(s)")
                else:
                    print(f"    {snap['name']}: INVALID "
                          f"({snap.get('error')})")
        return 0
    if args.action == "verify":
        for shard in report["shards"]:
            print(f"  {shard['shard']}: snapshot lsn "
                  f"{shard['snapshot_lsn']}, "
                  f"{shard['snapshot_sessions']} session(s), "
                  f"{shard['replay_records']} record(s) to replay")
        for problem in report["problems"]:
            print(f"  PROBLEM: {problem}", file=sys.stderr)
        print("ok" if report["ok"] else "NOT OK")
        return 0 if report["ok"] else 1
    for shard in report["shards"]:
        removed = ", ".join(shard["removed_segments"]) or "nothing"
        print(f"  {shard['shard']}: removed {removed}")
    print(f"{report['segments_removed']} segment(s) removed")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.server import ServeContext
    from repro.server.loadgen import run_network_load_test

    context = ServeContext.from_scenario(
        args.scenario, instances=args.instances, buffer_width=args.buffer
    )
    report = run_network_load_test(
        args.host,
        args.port,
        context,
        sessions=args.sessions,
        processes=args.processes,
        threads=args.threads,
        chunk_records=args.chunk,
        seed=args.seed,
        mode=args.mode,
    )
    summary = report.as_dict()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 1 if report.failures else 0
    inner = report.report
    print(f"{context.name}: {inner.sessions} networked session(s) "
          f"against {args.host}:{args.port} "
          f"({args.processes} process(es) x {args.threads} thread(s))")
    print(f"  records fed:      {inner.total_records}")
    print(f"  wall time:        {inner.wall_s:.3f}s")
    print(f"  throughput:       {inner.records_per_s:.0f} records/s")
    print(f"  p50 feed latency: {report.p50_feed_latency_s * 1e3:.3f}ms")
    print(f"  p95 feed latency: {inner.p95_feed_latency_s * 1e3:.3f}ms")
    print(f"  p99 feed latency: {report.p99_feed_latency_s * 1e3:.3f}ms")
    print(f"  retries:          {report.retries} "
          f"(recoveries: {report.recoveries})")
    print(f"  session statuses: {summary['statuses']}")
    for failure in report.failures:
        print(f"  FAILED {failure}", file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import ChaosConfig, ChaosRunner
    from repro.chaos.faults import PLANES, FaultPlan

    planes = tuple(p.strip() for p in args.faults.split(",") if p.strip())
    unknown = [p for p in planes if p not in PLANES]
    if unknown:
        print(f"unknown fault plane(s): {', '.join(unknown)}; "
              f"choose from {', '.join(PLANES)}", file=sys.stderr)
        return 2
    plan = FaultPlan.default(
        planes=planes,
        frame_loss=args.frame_loss,
        frame_corrupt=args.frame_corrupt,
    )
    config = ChaosConfig(
        seed=args.seed,
        sessions=args.sessions,
        duration_s=args.duration,
        planes=planes,
        scenario=args.scenario,
        instances=args.instances,
        buffer_width=args.buffer,
        mode=args.mode,
        chunk_records=args.chunk,
        shards=args.shards,
        crash=not args.no_crash,
        plan=plan,
    )
    report = ChaosRunner(config).run()
    payload = report.as_dict()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=2, sort_keys=True)
            out.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.ok else 1
    deterministic = report.deterministic
    ops = report.ops
    statuses: dict = {}
    for row in deterministic["sessions"]:
        key = f"{row['role']}:{row['status']}"
        statuses[key] = statuses.get(key, 0) + 1
    print(f"chaos soak: seed={args.seed} sessions={args.sessions} "
          f"planes={','.join(planes)} crash={not args.no_crash}")
    print(f"  wall time:          {ops['wall_s']:.3f}s")
    print(f"  determinism digest: {report.determinism_digest}")
    print(f"  session outcomes:   {statuses}")
    print(f"  faults fired:       {ops['faults']}")
    print(f"  client retries:     {ops['retries']} "
          f"(recoveries: {ops['recoveries']}, "
          f"breaker opens: {ops['breaker_opens']})")
    if not args.no_crash:
        crash = ops["crash"]
        print(f"  crash/restart:      {crash['acked_at_crash']} chunk(s) "
              f"acked at crash, restart {crash['restart_wall_s']:.3f}s, "
              f"degraded shards {crash['pre_crash_degraded_shards']}")
    violations = [
        v
        for group in deterministic["invariants"].values()
        for v in group
    ]
    if violations:
        for violation in violations:
            print(f"  VIOLATION {violation['invariant']} "
                  f"[{violation['subject']}]: {violation['detail']}",
                  file=sys.stderr)
        return 1
    print("  invariants:         all held "
          "(acked-durability, localization-convergence, "
          "shard-liveness, metrics-serveable)")
    if args.report:
        print(f"  report:             {args.report}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    import time

    from repro import perf
    from repro.runtime.cache import default_cache
    from repro.selection import kernels
    from repro.selection.localization import PathLocalizer
    from repro.selection.selector import MessageSelector
    from repro.sim.engine import TransactionSimulator
    from repro.sim.tracebuffer import TraceBuffer
    from repro.soc.t2.scenarios import scenario

    sc = scenario(args.scenario, instances=args.instances)
    start = time.perf_counter()
    with perf.collect() as counters:
        u = sc.interleaved()
        selector = MessageSelector(
            u, args.buffer, subgroups=sc.subgroup_pool
        )
        result = selector.select(
            method=args.method, packing=not args.no_packing
        )
        # capture one golden run so ring-overwrite pressure
        # (tracebuffer_evictions / _overwritten_bits) shows up in the
        # same counter table as the selection stages
        with perf.timed("capture"):
            records = TransactionSimulator(u, sc.name).run(seed=0).records
            TraceBuffer(args.buffer, args.depth, result.traced).capture(
                records
            )
        # replay the captured run through the localization engine so
        # the kernel stage counters (localize_kernel_*,
        # localize_table_*) land in the same table
        with perf.timed("localize"):
            localizer = PathLocalizer(
                u, result.traced, engine=args.engine
            ).warm()
            observed = [
                r.message
                for r in records
                if localizer.is_visible(r.message)
            ]
            frontier = localizer.advance_many(
                localizer.initial_frontier(), observed
            ).frontier
            localizer.prefix_count(frontier)
    wall = time.perf_counter() - start
    perf.record_profile(
        counters,
        f"profile:scenario{args.scenario}x{args.instances}:{args.method}",
        wall_time_s=wall,
    )
    cache_stats = default_cache().stats.as_dict()
    table_stats = kernels.default_registry().stats()
    if args.json:
        payload = counters.as_dict()
        payload["wall_time_s"] = round(wall, 6)
        payload["result"] = result.describe()
        payload["cache"] = cache_stats
        payload["engine"] = localizer.engine
        payload["localize_tables"] = table_stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{sc.name}: profile (method={args.method}, "
          f"buffer={args.buffer}, instances={args.instances})")
    print(f"interleaved flow: {u.num_states} states, "
          f"{u.num_transitions} transitions")
    print(result.describe())
    print(counters.format())
    print(f"{'total wall time':<24}  {wall:>13.4f}s")
    print(f"{'artifact cache':<24}  "
          f"{cache_stats['hits']:>7} hit(s) / "
          f"{cache_stats['misses']} miss(es)")
    print(f"{'localize engine':<24}  {localizer.engine:>14} "
          f"({table_stats['backend']} backend)")
    print(f"{'localize tables':<24}  "
          f"{table_stats['hits']:>7} hit(s) / "
          f"{table_stats['misses']} miss(es), "
          f"{table_stats['bytes']:,} bytes")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    import json

    from repro.core.flowspec import format_flowspec
    from repro.mining import evaluate_scenario

    ev = evaluate_scenario(
        args.scenario,
        instances=args.instances,
        runs=args.runs,
        base_seed=args.seed,
        min_support=args.support,
        buffer_width=args.buffer,
        jobs=args.jobs,
        eval_runs=args.eval_runs,
    )
    if args.emit:
        print(
            format_flowspec(
                [m.flow for m in ev.mining.flows],
                ev.mining.spec.subgroups,
            ),
            end="",
        )
        return 0
    if args.json:
        payload = {
            "scenario": ev.number,
            "corpus": {
                "runs": ev.corpus.runs,
                "records": ev.corpus.total_records,
            },
            "flows": [
                {
                    "name": m.flow.name,
                    "states": m.flow.num_states,
                    "transitions": len(m.flow.transitions),
                    "instances": m.evidence.occurrences,
                }
                for m in ev.mining.flows
            ],
            "transition_recall": ev.spec.transition_recall,
            "transition_precision": ev.spec.transition_precision,
            "state_recall": ev.spec.state_recall,
            "state_precision": ev.spec.state_precision,
            "truth_coverage": ev.loop.truth_coverage,
            "mined_coverage": ev.loop.mined_coverage,
            "coverage_delta": ev.loop.coverage_delta,
            "truth_localization": ev.loop.truth_localization,
            "mined_localization": ev.loop.mined_localization,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(ev.corpus.describe())
    print(ev.mining.describe())
    print("vs ground truth:")
    for match in ev.spec.matches:
        marker = "==" if match.language_equal else "~="
        print(f"  {match.truth_name} {marker} {match.mined_name}: "
              f"transitions {match.matched_truth_transitions}/"
              f"{match.truth_transitions} recalled, "
              f"{match.matched_mined_transitions}/"
              f"{match.mined_transitions} precise")
    for name in ev.spec.unmatched_truth:
        print(f"  {name}: NOT recovered")
    for name in ev.spec.unmatched_mined:
        print(f"  {name}: no ground-truth counterpart")
    print(f"  transition recall {ev.spec.transition_recall:.1%}, "
          f"precision {ev.spec.transition_precision:.1%}; "
          f"state recall {ev.spec.state_recall:.1%}, "
          f"precision {ev.spec.state_precision:.1%}")
    print("closed loop (selection driven by mined spec):")
    print(f"  traced (truth): {', '.join(ev.loop.truth_traced)}")
    print(f"  traced (mined): {', '.join(ev.loop.mined_traced)}")
    print(f"  Def-7 coverage: truth {ev.loop.truth_coverage:.1%}, "
          f"mined {ev.loop.mined_coverage:.1%} "
          f"(delta {ev.loop.coverage_delta:.1%})")
    print(f"  localization:   truth {ev.loop.truth_localization:.4%}, "
          f"mined {ev.loop.mined_localization:.4%}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    import json

    from repro.compress import (
        decode_stream,
        encode_records,
        uncompressed_capture_bits,
    )
    from repro.sim.tracefile import read_trace_file, write_trace_file
    from repro.soc.t2.messages import t2_message_catalog

    catalog = dict(t2_message_catalog().messages)

    if args.action == "encode":
        with open(args.input, encoding="utf-8") as stream:
            records, scenario_name, seed = read_trace_file(stream, catalog)
        encoded = encode_records(
            records,
            scenario=scenario_name,
            seed=seed,
            records_per_frame=args.records_per_frame,
        )
        output = args.output or args.input + ".ctrace"
        with open(output, "wb") as out:
            out.write(encoded.data)
        raw_bits = uncompressed_capture_bits(records)
        print(f"encoded {len(records)} records into {encoded.frame_count} "
              f"frame(s), {len(encoded.data)} bytes "
              f"({encoded.ratio_vs(raw_bits):.2f}x vs raw capture)")
        print(f"wrote {output}")
        return 0

    with open(args.input, "rb") as stream:
        data = stream.read()
    result = decode_stream(data, catalog)
    for diagnostic in result.diagnostics:
        print(f"  {diagnostic}", file=sys.stderr)

    if args.action == "decode":
        if args.output and args.output != "-":
            with open(args.output, "w", encoding="utf-8") as out:
                write_trace_file(
                    out,
                    result.records,
                    scenario=result.scenario,
                    seed=result.seed,
                )
            print(f"decoded {len(result.records)} records; "
                  f"wrote {args.output}")
        else:
            write_trace_file(
                sys.stdout,
                result.records,
                scenario=result.scenario,
                seed=result.seed,
            )
        return 0 if not result.diagnostics else 1

    # stats
    records = result.records
    raw_bits = uncompressed_capture_bits(records)
    encoded_bits = len(data) * 8
    names = sorted({r.message.message.name for r in records})
    payload = {
        "input": args.input,
        "scenario": result.scenario,
        "seed": result.seed,
        "records": len(records),
        "frames_decoded": result.frames_decoded,
        "records_dropped": result.records_dropped,
        "diagnostics": len(result.diagnostics),
        "encoded_bytes": len(data),
        "encoded_bits": encoded_bits,
        "raw_capture_bits": raw_bits,
        "ratio": (raw_bits / encoded_bits) if encoded_bits else 0.0,
        "bits_per_record": (
            encoded_bits / len(records) if records else 0.0
        ),
        "distinct_messages": names,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.input}: scenario={result.scenario!r} "
          f"seed={result.seed}")
    print(f"  records:        {payload['records']} "
          f"({payload['records_dropped']} dropped)")
    print(f"  frames decoded: {payload['frames_decoded']}")
    print(f"  encoded size:   {payload['encoded_bytes']} bytes "
          f"({payload['bits_per_record']:.1f} bits/record)")
    print(f"  compression:    {payload['ratio']:.2f}x vs raw capture "
          f"({raw_bits} bits)")
    print(f"  messages:       {', '.join(names)}")
    if result.diagnostics:
        print(f"  diagnostics:    {len(result.diagnostics)} "
              "(see stderr)")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.soc.t2.flows import t2_flows
    from repro.viz import flow_to_dot, interleaved_to_dot

    if args.spec:
        from repro.core.flowspec import parse_flowspec

        with open(args.spec, encoding="utf-8") as stream:
            spec = parse_flowspec(stream)
        if args.flow not in spec.flows:
            print(
                f"{args.spec} defines {sorted(spec.flows)}, "
                f"not {args.flow!r}",
                file=sys.stderr,
            )
            return 2
        print(flow_to_dot(spec.flow(args.flow)))
        return 0

    flows = t2_flows()
    if args.flow in flows:
        print(flow_to_dot(flows[args.flow]))
        return 0
    if args.flow.startswith("scenario"):
        from repro.soc.t2.scenarios import scenario

        try:
            number = int(args.flow.removeprefix("scenario"))
            sc = scenario(number)
        except (ValueError, KeyError):
            print(
                f"unknown scenario {args.flow!r}; choose "
                "scenario1, scenario2, or scenario3",
                file=sys.stderr,
            )
            return 2
        print(interleaved_to_dot(sc.interleaved()))
        return 0
    print(
        f"unknown flow {args.flow!r}; choose one of "
        f"{', '.join(flows)} or scenario1/scenario2/scenario3",
        file=sys.stderr,
    )
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Application-level hardware trace message selection "
        "(DAC 2018 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate tables/figures")
    tables.add_argument("which", nargs="*", help="artifact names "
                        "(default: all)")
    tables.add_argument("--instances", type=int, default=1)
    tables.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = all CPUs)")
    tables.set_defaults(func=_cmd_tables)

    select = sub.add_parser("select", help="run message selection")
    select.add_argument("scenario", type=int, choices=(1, 2, 3))
    select.add_argument("--buffer", type=int, default=32)
    select.add_argument("--depth", type=int, default=64,
                        help="trace buffer depth in entries")
    select.add_argument("--instances", type=int, default=1)
    select.add_argument(
        "--method", choices=("exhaustive", "knapsack"), default="exhaustive"
    )
    select.add_argument("--no-packing", action="store_true")
    select.add_argument("--compress", action="store_true",
                        help="admit combinations by expected encoded "
                        "bits against the width x depth bit budget "
                        "instead of worst-case entry width")
    select.add_argument("--guard-band", type=float, default=0.25,
                        help="worst-case margin of the compressed "
                        "budget in [0, 1]")
    select.add_argument("--json", action="store_true",
                        help="emit the selection and capture "
                        "utilization (with overflow) as JSON")
    select.set_defaults(func=_cmd_select)

    debug = sub.add_parser("debug", help="replay a debugging case study")
    debug.add_argument("case_study", type=int)
    debug.add_argument("--instances", type=int, default=1)
    debug.add_argument("--runs", type=int, default=1,
                       help="failing runs to replay (a >1 value "
                       "aggregates a validation campaign)")
    debug.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --runs (0 = all CPUs)")
    debug.set_defaults(func=_cmd_debug)

    usb = sub.add_parser("usb", help="USB baseline comparison")
    usb.set_defaults(func=_cmd_usb)

    plan = sub.add_parser(
        "plan", help="sweep trace buffer widths for a scenario"
    )
    plan.add_argument("scenario", type=int, choices=(1, 2, 3))
    plan.add_argument(
        "--widths", type=int, nargs="+",
        default=[8, 12, 16, 20, 24, 28, 32, 40, 48, 64],
    )
    plan.add_argument("--target", type=float, default=None,
                      help="coverage target, e.g. 0.9")
    plan.add_argument("--instances", type=int, default=1)
    plan.add_argument("--jobs", type=int, default=1,
                      help="worker processes (0 = all CPUs)")
    plan.set_defaults(func=_cmd_plan)

    spec = sub.add_parser(
        "spec", help="export the T2 flows as a flowspec file"
    )
    spec.set_defaults(func=_cmd_spec)

    export = sub.add_parser(
        "export", help="export all experiment results as JSON"
    )
    export.add_argument("output", nargs="?", default="-",
                        help="output path ('-' for stdout)")
    export.add_argument("--instances", type=int, default=1)
    export.set_defaults(func=_cmd_export)

    report = sub.add_parser(
        "report", help="build the full markdown reproduction report"
    )
    report.add_argument("output", nargs="?", default="-",
                        help="output path ('-' for stdout)")
    report.add_argument("--instances", type=int, default=1)
    report.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = all CPUs)")
    report.set_defaults(func=_cmd_report)

    analyze = sub.add_parser(
        "analyze", help="select trace messages for a flowspec file"
    )
    analyze.add_argument("spec", help="path to a .flowspec file")
    analyze.add_argument("--buffer", type=int, default=32)
    analyze.add_argument("--copies", type=int, default=1)
    analyze.add_argument(
        "--method", choices=("exhaustive", "knapsack"), default="knapsack"
    )
    analyze.add_argument("--no-packing", action="store_true")
    analyze.set_defaults(func=_cmd_analyze)

    cache = sub.add_parser(
        "cache", help="inspect/clear/warm the artifact cache"
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "warm"),
        help="stats: counters + telemetry; clear: drop all entries; "
        "warm: precompute the scenario selections",
    )
    cache.add_argument("--instances", type=int, default=1)
    cache.add_argument("--json", action="store_true",
                       help="emit stats as JSON (stats action only)")
    cache.set_defaults(func=_cmd_cache)

    stream = sub.add_parser(
        "stream",
        help="follow a trace file incrementally, printing localization",
    )
    stream.add_argument("tracefile", help="path to a repro-trace file")
    stream.add_argument("--scenario", type=int, choices=(1, 2, 3),
                        default=1)
    stream.add_argument("--mode", choices=("prefix", "exact", "window"),
                        default="prefix")
    stream.add_argument("--buffer", type=int, default=32)
    stream.add_argument("--instances", type=int, default=1)
    stream.add_argument("--chunk-bytes", type=int, default=256,
                        help="bytes ingested per read (smaller = more "
                        "frequent progress lines)")
    stream.add_argument("--max-frontier", type=int, default=None,
                        help="bound the carried DP frontier")
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve-demo",
        help="drive N concurrent synthetic streaming debug sessions",
    )
    serve.add_argument("--sessions", type=int, default=8)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--scenario", type=int, choices=(1, 2, 3),
                       default=1)
    serve.add_argument("--mode", choices=("prefix", "exact", "window"),
                       default="prefix")
    serve.add_argument("--buffer", type=int, default=32)
    serve.add_argument("--instances", type=int, default=1)
    serve.add_argument("--chunk", type=int, default=16,
                       help="records per feed call")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-frontier", type=int, default=4096)
    serve.add_argument("--json", action="store_true",
                       help="emit the load-test report as JSON")
    serve.set_defaults(func=_cmd_serve_demo)

    served = sub.add_parser(
        "serve",
        help="run the networked debug service (wire protocol over TCP)",
    )
    served.add_argument("--scenario", type=int, choices=(1, 2, 3),
                        default=1)
    served.add_argument("--instances", type=int, default=1)
    served.add_argument("--buffer", type=int, default=32)
    served.add_argument("--mode", choices=("prefix", "exact", "window"),
                        default="prefix")
    served.add_argument("--host", default="127.0.0.1")
    served.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed on start)")
    served.add_argument("--shards", type=int, default=2,
                        help="worker shards (sessions are routed by "
                        "consistent hash)")
    served.add_argument("--max-sessions", type=int, default=64,
                        help="admission control: open-session cap")
    served.add_argument("--queue-depth", type=int, default=64,
                        help="per-shard queued-request cap before "
                        "RETRY_LATER")
    served.add_argument("--inflight", type=int, default=32,
                        help="per-connection in-flight request cap")
    served.add_argument("--idle-timeout", type=float, default=300.0,
                        help="seconds before an idle session is evicted")
    served.add_argument("--idle-sweep", type=float, default=10.0,
                        help="seconds between idle-eviction sweeps")
    served.add_argument("--max-frontier", type=int, default=4096)
    served.add_argument("--metrics-port", type=int, default=None,
                        help="also serve JSON metrics over HTTP on "
                        "this port (0 = ephemeral)")
    served.add_argument("--duration", type=float, default=None,
                        help="serve for N seconds then drain "
                        "(default: until SIGINT/SIGTERM)")
    served.add_argument("--data-dir", default=None,
                        help="enable durability: per-shard write-ahead "
                        "log + snapshots under this directory "
                        "(sessions survive restarts and crashes)")
    served.add_argument("--fsync", choices=("always", "interval", "off"),
                        default="interval",
                        help="WAL fsync policy (default: interval)")
    served.add_argument("--fsync-interval", type=float, default=0.05,
                        help="max seconds between fsyncs under "
                        "--fsync interval")
    served.add_argument("--snapshot-every", type=int, default=256,
                        help="feeds between frontier snapshots per "
                        "shard (0 disables cadence snapshots)")
    served.set_defaults(func=_cmd_serve)

    store = sub.add_parser(
        "store",
        help="inspect/verify/compact a server data directory",
    )
    store.add_argument(
        "action", choices=("inspect", "verify", "compact"),
        help="inspect: list segments and snapshots; verify: run "
        "recovery read-only and report problems; compact: drop WAL "
        "segments covered by the newest snapshot",
    )
    store.add_argument("data_dir", help="the server's --data-dir path")
    store.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    store.set_defaults(func=_cmd_store)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay simulated trace files against a running server",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--scenario", type=int, choices=(1, 2, 3),
                         default=1)
    loadgen.add_argument("--instances", type=int, default=1)
    loadgen.add_argument("--buffer", type=int, default=32)
    loadgen.add_argument("--mode", choices=("prefix", "exact", "window"),
                         default="prefix")
    loadgen.add_argument("--sessions", type=int, default=8)
    loadgen.add_argument("--processes", type=int, default=2,
                         help="worker processes (0 = inline threads)")
    loadgen.add_argument("--threads", type=int, default=2,
                         help="concurrent sessions per process")
    loadgen.add_argument("--chunk", type=int, default=16,
                         help="trace records per wire chunk")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    loadgen.set_defaults(func=_cmd_loadgen)

    chaos = sub.add_parser(
        "chaos",
        help="run a deterministic fault-injection soak",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--duration", type=float, default=120.0,
                       help="wall-clock budget in seconds (the soak "
                       "finishes early once every session converges)")
    chaos.add_argument("--sessions", type=int, default=32,
                       help="concurrent client sessions")
    chaos.add_argument("--faults", default="network,disk,session",
                       help="comma-separated fault planes to enable")
    chaos.add_argument("--scenario", type=int, choices=(1, 2, 3),
                       default=1)
    chaos.add_argument("--instances", type=int, default=2)
    chaos.add_argument("--buffer", type=int, default=32)
    chaos.add_argument("--mode", choices=("prefix", "exact", "window"),
                       default="prefix")
    chaos.add_argument("--chunk", type=int, default=4,
                       help="trace records per wire chunk")
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument("--frame-loss", type=float, default=0.08,
                       help="per-frame drop probability")
    chaos.add_argument("--frame-corrupt", type=float, default=0.03,
                       help="per-frame bit-corruption probability")
    chaos.add_argument("--no-crash", action="store_true",
                       help="skip the mid-soak server kill + recovery")
    chaos.add_argument("--report", metavar="PATH",
                       help="write the full soak report as JSON")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON to stdout")
    chaos.set_defaults(func=_cmd_chaos)

    profile = sub.add_parser(
        "profile",
        help="profile interleaving + selection stage counters",
    )
    profile.add_argument("scenario", type=int, choices=(1, 2, 3))
    profile.add_argument("--buffer", type=int, default=32)
    profile.add_argument("--depth", type=int, default=64,
                         help="trace buffer depth for the capture stage")
    profile.add_argument("--instances", type=int, default=1)
    profile.add_argument(
        "--method", choices=("exhaustive", "knapsack"), default="exhaustive"
    )
    profile.add_argument("--no-packing", action="store_true")
    profile.add_argument(
        "--engine", choices=("dense", "reference"), default=None,
        help="localization engine for the replay stage (default: "
        "REPRO_LOCALIZE_ENGINE, else dense)"
    )
    profile.add_argument("--json", action="store_true",
                         help="emit the counters as JSON")
    profile.set_defaults(func=_cmd_profile)

    mine = sub.add_parser(
        "mine",
        help="mine flow specifications from a simulated trace corpus",
    )
    mine.add_argument("scenario", type=int, choices=(1, 2, 3))
    mine.add_argument("--runs", type=int, default=50,
                      help="corpus size (golden runs to simulate)")
    mine.add_argument("--seed", type=int, default=0,
                      help="first corpus seed (seeds are seed..seed+runs-1)")
    mine.add_argument("--support", type=float, default=0.1,
                      help="minimum sequence support threshold")
    mine.add_argument("--buffer", type=int, default=32)
    mine.add_argument("--instances", type=int, default=1)
    mine.add_argument("--eval-runs", type=int, default=3,
                      help="golden runs scored for localization")
    mine.add_argument("--jobs", type=int, default=1,
                      help="worker processes for corpus generation "
                      "(0 = all CPUs)")
    mine.add_argument("--emit", action="store_true",
                      help="print the mined flowspec file and exit")
    mine.add_argument("--json", action="store_true",
                      help="emit the evaluation as JSON")
    mine.set_defaults(func=_cmd_mine)

    compress = sub.add_parser(
        "compress",
        help="encode/decode/inspect compressed trace bitstreams",
    )
    compress.add_argument(
        "action", choices=("encode", "decode", "stats"),
        help="encode: trace file -> framed bitstream; decode: bitstream "
        "-> trace file; stats: bitstream statistics",
    )
    compress.add_argument("input", help="input path (text trace for "
                          "encode, bitstream otherwise)")
    compress.add_argument("-o", "--output", default=None,
                          help="output path (encode: default "
                          "<input>.ctrace; decode: default stdout)")
    compress.add_argument("--records-per-frame", type=int, default=32,
                          help="data-frame granularity for encode")
    compress.add_argument("--json", action="store_true",
                          help="emit stats as JSON (stats action only)")
    compress.set_defaults(func=_cmd_compress)

    dot = sub.add_parser("dot", help="dump a flow as Graphviz DOT")
    dot.add_argument(
        "flow",
        help="PIOR | PIOW | NCUU | NCUD | Mon | scenario1..scenario3",
    )
    dot.add_argument(
        "--spec", help="read the flow from a flowspec file instead"
    )
    dot.set_defaults(func=_cmd_dot)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
