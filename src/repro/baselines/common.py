"""Shared types for gate-level signal selection results.

Both baselines pick individual flip-flops under a bit budget.  Design
signals, however, are multi-bit *groups* of flip-flops (``rx_data`` is
eight FFs); Table 4 of the paper reports per-signal verdicts --
selected, partially selected (``P``), or not selected.  The helpers
here perform that classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Tuple

from repro.errors import SelectionError


@dataclass(frozen=True)
class SignalGroup:
    """A named multi-bit design signal backed by flip-flops.

    Attributes
    ----------
    name:
        Signal name as it appears in the design (e.g. ``"rx_data"``).
    flops:
        The flip-flop names implementing each bit.
    module:
        The design module owning the signal.
    interface:
        Whether the signal is an interface (message-carrying) register,
        as opposed to internal bookkeeping state.
    """

    name: str
    flops: Tuple[str, ...]
    module: str = "top"
    interface: bool = False

    def __post_init__(self) -> None:
        if not self.flops:
            raise SelectionError(f"signal group {self.name!r} has no bits")

    @property
    def width(self) -> int:
        return len(self.flops)


@dataclass(frozen=True)
class SignalSelectionResult:
    """Outcome of a gate-level selection method.

    Attributes
    ----------
    method:
        Method name (``"sigset"``, ``"prnet"``, ...).
    selected:
        Chosen flip-flop names, in selection order.
    budget_bits:
        The trace-buffer bit budget the selection respected.
    scores:
        The per-flip-flop score the method ranked by (diagnostic).
    """

    method: str
    selected: Tuple[str, ...]
    budget_bits: int
    scores: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.selected) > self.budget_bits:
            raise SelectionError(
                f"{self.method}: selected {len(self.selected)} bits "
                f"exceeds the {self.budget_bits}-bit budget"
            )

    @property
    def selected_set(self) -> frozenset:
        return frozenset(self.selected)


def classify_group_selection(
    result: SignalSelectionResult, group: SignalGroup
) -> str:
    """Table-4 verdict for one signal: ``"full"``, ``"partial"``, or
    ``"none"``."""
    hit = sum(1 for f in group.flops if f in result.selected_set)
    if hit == 0:
        return "none"
    if hit == group.width:
        return "full"
    return "partial"


def groups_fully_selected(
    result: SignalSelectionResult, groups: Iterable[SignalGroup]
) -> Tuple[SignalGroup, ...]:
    """The signal groups every bit of which was selected."""
    return tuple(
        g for g in groups if classify_group_selection(result, g) == "full"
    )
