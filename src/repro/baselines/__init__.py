"""Gate-level signal-selection baselines compared against in Section 5.4.

* :mod:`repro.baselines.sigset` -- an SRR-driven restorability-capacity
  greedy in the style of Basu & Mishra (VLSI Design 2011).
* :mod:`repro.baselines.prnet` -- a PageRank-centrality selection over
  the flip-flop dependency graph in the style of Ma et al.
  (ICCAD 2015).
* :mod:`repro.baselines.common` -- shared result types and the
  full/partial/none signal-group classification used by Table 4.
"""

from repro.baselines.common import (
    SignalSelectionResult,
    SignalGroup,
    classify_group_selection,
)
from repro.baselines.sigset import sigset_select
from repro.baselines.prnet import prnet_select, pagerank

__all__ = [
    "SignalSelectionResult",
    "SignalGroup",
    "classify_group_selection",
    "sigset_select",
    "prnet_select",
    "pagerank",
]
