"""SigSeT: restorability-capacity greedy signal selection.

A reimplementation in the spirit of Basu & Mishra, "Efficient trace
signal selection for post silicon validation and debug" (VLSI Design
2011).  Each flip-flop is scored by its *restoration capacity*: how
much of the rest of the state it can be expected to restore through
forward propagation and backward justification.  Capacity is computed
structurally on the flip-flop dependency graph with a per-level decay
(every gate level halves the probability that values can be pushed
through), and selection is greedy with diminishing returns: once a
flip-flop is covered by an already-selected one, it no longer
contributes to candidates' marginal capacity.

This is exactly the family of methods the paper criticizes: it
optimizes gate-level state reconstruction and has no notion of
application-level messages, so it gravitates to deep internal
structures (shift registers, counters, FSM rings) rather than
interface registers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.baselines.common import SignalSelectionResult
from repro.errors import SelectionError
from repro.netlist.circuit import Circuit

#: Per-gate-level attenuation of restoration probability.
LEVEL_DECAY = 0.5


def restorability_edges(
    circuit: Circuit,
) -> Dict[str, Dict[str, float]]:
    """Weighted FF-to-FF restoration edges.

    ``edges[u][v] = w`` means knowing flip-flop *u* helps restore
    flip-flop *v* with structural strength *w* (``LEVEL_DECAY ** depth``
    attenuated by the fan-in width at each gate level along the path).

    Edges are symmetric in direction of benefit: forward propagation
    (u feeds v's next-state logic) and backward justification (v's
    known output constrains u) are both counted, matching how
    restoration actually runs.
    """
    cones = circuit.flop_dependency_graph()
    flops = set(circuit.flop_names)
    edges: Dict[str, Dict[str, float]] = {f: {} for f in flops}
    depth = _signal_depths(circuit)
    for sink, cone in cones.items():
        sources = [s for s in cone if s in flops]
        if not sources:
            continue
        # wider support: each individual source is less likely to
        # determine the sink (and vice versa for justification)
        strength = LEVEL_DECAY ** depth[sink] / len(sources)
        for source in sources:
            edges[source][sink] = max(edges[source].get(sink, 0.0), strength)
            edges[sink][source] = max(
                edges[sink].get(source, 0.0), strength * LEVEL_DECAY
            )
    return edges


def restoration_capacity(
    circuit: Circuit, edges: Optional[Dict[str, Dict[str, float]]] = None
) -> Dict[str, float]:
    """Standalone capacity of each flip-flop (sum of its edge weights)."""
    if edges is None:
        edges = restorability_edges(circuit)
    return {f: sum(ws.values()) for f, ws in edges.items()}


def sigset_select(
    circuit: Circuit,
    budget_bits: int,
    candidates: Optional[Iterable[str]] = None,
) -> SignalSelectionResult:
    """Greedy restorability-capacity selection under a bit budget.

    Parameters
    ----------
    circuit:
        The gate-level design.
    budget_bits:
        Trace buffer width in bits; each selected flip-flop costs one.
    candidates:
        Restrict the candidate pool (defaults to every flip-flop).

    Returns
    -------
    SignalSelectionResult
        Flip-flops in selection order with their marginal capacities.
    """
    if budget_bits <= 0:
        raise SelectionError(f"budget must be positive, got {budget_bits}")
    pool: Set[str] = set(candidates if candidates is not None
                         else circuit.flop_names)
    unknown_pool = pool - set(circuit.flop_names)
    if unknown_pool:
        raise SelectionError(
            f"candidates are not flip-flops: {sorted(unknown_pool)}"
        )
    edges = restorability_edges(circuit)
    coverage: Dict[str, float] = {f: 0.0 for f in circuit.flop_names}
    selected: List[str] = []
    scores: Dict[str, float] = {}
    while len(selected) < min(budget_bits, len(pool)):
        best: Optional[str] = None
        best_gain = -1.0
        for candidate in sorted(pool - set(selected)):
            gain = 1.0 - coverage[candidate]  # the bit itself
            for neighbour, weight in edges[candidate].items():
                gain += max(0.0, weight - coverage[neighbour])
            if gain > best_gain:
                best, best_gain = candidate, gain
        if best is None:  # pragma: no cover - pool exhausted
            break
        selected.append(best)
        scores[best] = best_gain
        coverage[best] = 1.0
        for neighbour, weight in edges[best].items():
            coverage[neighbour] = max(coverage[neighbour], weight)
    return SignalSelectionResult(
        method="sigset",
        selected=tuple(selected),
        budget_bits=budget_bits,
        scores=scores,
    )


def sigset_select_simulated(
    circuit: Circuit,
    budget_bits: int,
    cycles: int = 32,
    seed: int = 0,
    candidates: Optional[Iterable[str]] = None,
    max_rounds: Optional[int] = None,
) -> SignalSelectionResult:
    """Simulation-driven restorability greedy (the faithful, slow one).

    Each greedy round actually *runs state restoration* for every
    candidate flip-flop added to the current selection and keeps the
    one restoring the most state -- the evaluation loop of
    simulation-based SRR selection (Chatterjee et al., ICCAD 2011).
    Cost per round is O(candidates x restoration), and restoration is
    O(cycles x gates x sweeps): this is exactly why the paper could not
    apply SRR methods to the OpenSPARC T2
    (``benchmarks/test_scalability_baselines.py`` quantifies the
    blow-up).

    Parameters
    ----------
    circuit, budget_bits, candidates:
        As for :func:`sigset_select`.
    cycles, seed:
        Golden-simulation length and stimulus seed.
    max_rounds:
        Stop after this many greedy rounds (for benchmarking a single
        round on large designs); ``None`` runs to the bit budget.
    """
    from repro.netlist.restoration import RestorationEngine
    from repro.netlist.simulator import Simulator

    if budget_bits <= 0:
        raise SelectionError(f"budget must be positive, got {budget_bits}")
    pool: Set[str] = set(
        candidates if candidates is not None else circuit.flop_names
    )
    unknown = pool - set(circuit.flop_names)
    if unknown:
        raise SelectionError(
            f"candidates are not flip-flops: {sorted(unknown)}"
        )
    golden = Simulator(circuit).run_random(cycles, seed=seed)
    engine = RestorationEngine(circuit)
    selected: List[str] = []
    scores: Dict[str, float] = {}
    rounds = min(budget_bits, len(pool))
    if max_rounds is not None:
        rounds = min(rounds, max_rounds)
    for _ in range(rounds):
        best: Optional[str] = None
        best_restored = -1
        for candidate in sorted(pool - set(selected)):
            report = engine.restore(golden, selected + [candidate])
            if report.restored_count > best_restored:
                best, best_restored = candidate, report.restored_count
        if best is None:  # pragma: no cover - pool exhausted
            break
        selected.append(best)
        scores[best] = float(best_restored)
    return SignalSelectionResult(
        method="sigset-simulated",
        selected=tuple(selected),
        budget_bits=budget_bits,
        scores=scores,
    )


def _signal_depths(circuit: Circuit) -> Dict[str, int]:
    """Gate-level depth of each flip-flop's next-state cone.

    Depth of a flip-flop = number of gate levels between state/input
    signals and its data pin (0 for a direct FF-to-FF connection).
    """
    level: Dict[str, int] = {}
    for name in circuit.inputs:
        level[name] = 0
    for name in circuit.constants:
        level[name] = 0
    for flop in circuit.flops:
        level[flop.output] = 0
    for gate in circuit.levelized_gates():
        level[gate.output] = 1 + max(level[s] for s in gate.inputs)
    return {f.output: level[f.data] for f in circuit.flops}
