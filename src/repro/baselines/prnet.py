"""PRNet: PageRank-centrality trace signal selection.

A reimplementation in the spirit of Ma, Pal, Jiang, Ray & Vasudevan,
"Can't See the Forest for the Trees: State Restoration's Limitations in
Post-silicon Trace Signal Selection" (ICCAD 2015), which ranks
flip-flops by their centrality in the state dependency network rather
than by SRR.

The dependency network has one node per flip-flop and a directed edge
``u -> v`` whenever *u* appears in the combinational fan-in cone of
*v*'s next-state function.  PageRank (power iteration, damping 0.85)
then scores structural influence; the top-scoring flip-flops within the
bit budget are selected.  Like SigSeT, the method is application-blind:
hub state (FSM rings, handshake counters) outranks wide interface
registers, which is the failure mode Table 4 exhibits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.baselines.common import SignalSelectionResult
from repro.errors import SelectionError
from repro.netlist.circuit import Circuit

#: Standard PageRank damping factor.
DAMPING = 0.85
#: Power-iteration convergence threshold (L1 norm).
TOLERANCE = 1e-10
#: Hard cap on power iterations.
MAX_ITERATIONS = 200


def dependency_network(circuit: Circuit) -> Dict[str, Tuple[str, ...]]:
    """Adjacency: flip-flop -> the flip-flops its next-state depends on.

    Edges point from a dependent flip-flop to its supports, so PageRank
    mass accumulates at signals whose values *drive* many others -- the
    restorability hubs Ma et al. rank by (knowing a hub restores its
    many dependents).
    """
    cones = circuit.flop_dependency_graph()
    flops = set(circuit.flop_names)
    supports: Dict[str, Set[str]] = {f: set() for f in flops}
    for sink, cone in cones.items():
        for source in cone:
            if source in flops and source != sink:
                supports[sink].add(source)
    return {f: tuple(sorted(v)) for f, v in supports.items()}


def pagerank(
    adjacency: Mapping[str, Tuple[str, ...]],
    damping: float = DAMPING,
    tolerance: float = TOLERANCE,
    max_iterations: int = MAX_ITERATIONS,
) -> Dict[str, float]:
    """Plain power-iteration PageRank over a directed graph.

    Dangling nodes redistribute uniformly.  Returns a score per node
    summing to 1.
    """
    nodes: List[str] = sorted(adjacency)
    if not nodes:
        return {}
    if not 0.0 < damping < 1.0:
        raise SelectionError(f"damping must be in (0, 1), got {damping}")
    n = len(nodes)
    rank = {node: 1.0 / n for node in nodes}
    for _ in range(max_iterations):
        dangling_mass = sum(
            rank[node] for node in nodes if not adjacency[node]
        )
        nxt = {node: (1.0 - damping) / n + damping * dangling_mass / n
               for node in nodes}
        for node in nodes:
            targets = adjacency[node]
            if not targets:
                continue
            share = damping * rank[node] / len(targets)
            for target in targets:
                nxt[target] += share
        delta = sum(abs(nxt[node] - rank[node]) for node in nodes)
        rank = nxt
        if delta < tolerance:
            break
    return rank


def prnet_select(
    circuit: Circuit,
    budget_bits: int,
    candidates: Optional[Iterable[str]] = None,
) -> SignalSelectionResult:
    """Select the *budget_bits* highest-PageRank flip-flops."""
    if budget_bits <= 0:
        raise SelectionError(f"budget must be positive, got {budget_bits}")
    adjacency = dependency_network(circuit)
    if candidates is not None:
        pool = set(candidates)
        unknown = pool - set(circuit.flop_names)
        if unknown:
            raise SelectionError(
                f"candidates are not flip-flops: {sorted(unknown)}"
            )
    else:
        pool = set(circuit.flop_names)
    scores = pagerank(adjacency)
    ranked = sorted(
        (f for f in pool),
        key=lambda f: (-scores.get(f, 0.0), f),
    )
    selected = tuple(ranked[:budget_bits])
    return SignalSelectionResult(
        method="prnet",
        selected=selected,
        budget_bits=budget_bits,
        scores={f: scores.get(f, 0.0) for f in selected},
    )
